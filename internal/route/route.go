// Package route implements a grid-based global router and, on top of it, the
// paper's F2F via placer (§5.1): unlike TSVs, face-to-face vias may sit
// anywhere — including over cells and macros — so placement-style algorithms
// are the wrong tool; instead the two dies are merged into one "2D-like"
// routing graph (plane 0 = bottom-die metal, plane 1 = top-die metal, with
// F2F-via edges between them at every grid cell) and the 3D nets are routed
// by an ordinary 2D router; the points where routes change plane are the F2F
// via locations.
package route

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
)

// Options configures the router.
type Options struct {
	// GCell is the routing grid cell edge in drawn µm.
	GCell float64
	// Capacity is the number of routes a gcell absorbs before congestion
	// cost kicks in.
	Capacity int
	// ViaCost is the extra path cost of changing planes (in gcell units);
	// keeps routes from zig-zagging between dies.
	ViaCost float64
	// CongestionCost is the per-overflow additive cost.
	CongestionCost float64
}

// DefaultOptions returns router defaults tuned for block-level F2F routing.
func DefaultOptions() Options {
	return Options{GCell: 2.0, Capacity: 24, ViaCost: 2.0, CongestionCost: 4.0}
}

// Grid is the two-plane routing graph over a block outline.
type Grid struct {
	opt    Options
	region geom.Rect
	nx, ny int
	// usage[plane][y*nx+x] counts routes through the gcell.
	usage [2][]int
	// viaUse[y*nx+x] counts F2F vias dropped in the gcell.
	viaUse []int
}

// NewGrid builds the routing grid over region.
func NewGrid(region geom.Rect, opt Options) (*Grid, error) {
	if opt.GCell <= 0 {
		opt = DefaultOptions()
	}
	nx := int(math.Ceil(region.W() / opt.GCell))
	ny := int(math.Ceil(region.H() / opt.GCell))
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("route: empty routing region %v", region)
	}
	g := &Grid{opt: opt, region: region, nx: nx, ny: ny}
	for p := 0; p < 2; p++ {
		g.usage[p] = make([]int, nx*ny)
	}
	g.viaUse = make([]int, nx*ny)
	return g, nil
}

// Dims returns the gcell grid dimensions.
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// cellAt maps a point to gcell coordinates, clamped.
func (g *Grid) cellAt(p geom.Point) (int, int) {
	x := int((p.X - g.region.Lo.X) / g.opt.GCell)
	y := int((p.Y - g.region.Lo.Y) / g.opt.GCell)
	if x < 0 {
		x = 0
	}
	if x >= g.nx {
		x = g.nx - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.ny {
		y = g.ny - 1
	}
	return x, y
}

// center returns the drawn-space center of gcell (x, y).
func (g *Grid) center(x, y int) geom.Point {
	return geom.Point{
		X: g.region.Lo.X + (float64(x)+0.5)*g.opt.GCell,
		Y: g.region.Lo.Y + (float64(y)+0.5)*g.opt.GCell,
	}
}

// node encodes (plane, y, x) as one integer.
func (g *Grid) node(plane, x, y int) int { return plane*g.nx*g.ny + y*g.nx + x }

func (g *Grid) unnode(n int) (plane, x, y int) {
	sz := g.nx * g.ny
	plane = n / sz
	rem := n % sz
	return plane, rem % g.nx, rem / g.nx
}

// stepCost is the cost of entering gcell (x,y) on plane.
func (g *Grid) stepCost(plane, x, y int) float64 {
	c := 1.0
	u := g.usage[plane][y*g.nx+x]
	if u > g.opt.Capacity {
		c += g.opt.CongestionCost * float64(u-g.opt.Capacity)
	}
	return c
}

// pqItem is an A* frontier entry.
type pqItem struct {
	node int
	f    float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// RoutedPath is the result of routing one two-pin connection.
type RoutedPath struct {
	// Nodes is the gcell node sequence from source to target.
	Nodes []int
	// LenUm is the drawn routed length in µm.
	LenUm float64
	// Vias are the drawn-space locations where the path changes plane.
	Vias []geom.Point
}

// Route2Pin routes from src (on plane srcPlane) to dst (on plane dstPlane)
// with A*, allowing plane changes (F2F vias) at any gcell. It updates usage.
func (g *Grid) Route2Pin(src geom.Point, srcPlane int, dst geom.Point, dstPlane int) (*RoutedPath, error) {
	sx, sy := g.cellAt(src)
	tx, ty := g.cellAt(dst)
	start := g.node(srcPlane, sx, sy)
	goal := g.node(dstPlane, tx, ty)

	n := 2 * g.nx * g.ny
	dist := make([]float64, n)
	prev := make([]int32, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[start] = 0
	h := func(node int) float64 {
		p, x, y := g.unnode(node)
		d := math.Abs(float64(x-tx)) + math.Abs(float64(y-ty))
		if p != dstPlane {
			d += g.opt.ViaCost
		}
		return d
	}
	frontier := &pq{{start, h(start)}}
	for frontier.Len() > 0 {
		it := heap.Pop(frontier).(pqItem)
		if it.node == goal {
			break
		}
		if it.f > dist[it.node]+h(it.node)+1e-9 {
			continue // stale entry
		}
		plane, x, y := g.unnode(it.node)
		// 4-neighborhood on the same plane.
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nxp, nyp := x+d[0], y+d[1]
			if nxp < 0 || nxp >= g.nx || nyp < 0 || nyp >= g.ny {
				continue
			}
			v := g.node(plane, nxp, nyp)
			nd := dist[it.node] + g.stepCost(plane, nxp, nyp)
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = int32(it.node)
				heap.Push(frontier, pqItem{v, nd + h(v)})
			}
		}
		// Plane change (F2F via) in place.
		v := g.node(1-plane, x, y)
		nd := dist[it.node] + g.opt.ViaCost
		if nd < dist[v] {
			dist[v] = nd
			prev[v] = int32(it.node)
			heap.Push(frontier, pqItem{v, nd + h(v)})
		}
	}
	if math.IsInf(dist[goal], 1) {
		return nil, fmt.Errorf("route: no path from %v to %v", src, dst)
	}

	// Recover the path, commit usage, collect via points.
	var nodes []int
	for v := goal; v != -1; v = int(prev[v]) {
		nodes = append(nodes, v)
	}
	// Reverse into source->target order.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	path := &RoutedPath{Nodes: nodes}
	for i, v := range nodes {
		plane, x, y := g.unnode(v)
		g.usage[plane][y*g.nx+x]++
		if i > 0 {
			pp, _, _ := g.unnode(nodes[i-1])
			if pp != plane {
				path.Vias = append(path.Vias, g.center(x, y))
				g.viaUse[y*g.nx+x]++
			} else {
				path.LenUm += g.opt.GCell
			}
		}
	}
	return path, nil
}

// Overflow returns the total gcell usage beyond capacity, a congestion
// metric.
func (g *Grid) Overflow() int {
	total := 0
	for p := 0; p < 2; p++ {
		for _, u := range g.usage[p] {
			if u > g.opt.Capacity {
				total += u - g.opt.Capacity
			}
		}
	}
	return total
}

// MaxViaDensity returns the largest number of F2F vias in any single gcell.
func (g *Grid) MaxViaDensity() int {
	m := 0
	for _, u := range g.viaUse {
		if u > m {
			m = u
		}
	}
	return m
}

// PlaceF2FVias runs the paper's F2F via placement flow on a folded block:
// every die-crossing signal net is routed through the merged two-plane grid
// (2D nets are excluded — the paper ties them to ground so they cannot
// perturb the 3D routes), and the plane-change points become the net's F2F
// vias. Macros are NOT blockages: F2F vias live above the top metal.
// Sets net.Vias/Crossings and b.NumF2F; returns the grid for inspection.
func PlaceF2FVias(b *netlist.Block, opt Options) (*Grid, error) {
	if !b.Is3D {
		return nil, fmt.Errorf("route: PlaceF2FVias on 2D block %s", b.Name)
	}
	region := b.Outline[0].Union(b.Outline[1])
	g, err := NewGrid(region, opt)
	if err != nil {
		return nil, err
	}

	// Route longest nets first (they define the via fabric), like the
	// TSV planner.
	type work struct {
		net  int
		span float64
	}
	var ws []work
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Kind != netlist.Signal || !b.NetIs3D(n) {
			continue
		}
		ws = append(ws, work{i, geom.HPWL(b.NetPins(n))})
	}
	sort.Slice(ws, func(a, c int) bool { return ws[a].span > ws[c].span })

	b.NumF2F = 0
	for _, w := range ws {
		n := &b.Nets[w.net]
		vias, err := routeNet3D(b, g, n)
		if err != nil {
			return nil, fmt.Errorf("route: net %s: %v", n.Name, err)
		}
		n.Vias = vias
		n.Crossings = len(vias)
		b.NumF2F += len(vias)
	}
	return g, nil
}

// routeNet3D routes one multi-pin 3D net as a driver-rooted star of 2-pin
// connections, merging the plane-change points. A sink on the driver's die
// contributes no via; sinks on the other die route through the merged graph.
func routeNet3D(b *netlist.Block, g *Grid, n *netlist.Net) ([]geom.Point, error) {
	dp := b.PinPos(n.Driver)
	dd := int(b.PinDie(n.Driver))
	var vias []geom.Point
	// Route to the centroid of far-die sinks once: a net crosses dies at one
	// (or a few) points, not once per sink; the router shares the crossing.
	var farPts []geom.Point
	for _, s := range n.Sinks {
		if int(b.PinDie(s)) != dd {
			farPts = append(farPts, b.PinPos(s))
		}
	}
	if len(farPts) == 0 {
		return nil, nil
	}
	// The route target is the far-die sink closest to the driver; remaining
	// far-die sinks connect on their own die from the via.
	best := farPts[0]
	for _, p := range farPts[1:] {
		if p.ManhattanDist(dp) < best.ManhattanDist(dp) {
			best = p
		}
	}
	path, err := g.Route2Pin(dp, dd, best, 1-dd)
	if err != nil {
		return nil, err
	}
	vias = append(vias, path.Vias...)
	if len(vias) == 0 {
		// Degenerate same-cell route; drop the via at the driver location.
		vias = append(vias, dp)
	}
	return vias, nil
}

// PlaceViasMidpoint is the naive baseline for the ablation study: every 3D
// net gets a via at the geometric crossing point with no congestion or
// sharing awareness. Returns the maximum via pile-up on a GCell-sized grid
// so the benchmark can contrast it with the routed flow.
func PlaceViasMidpoint(b *netlist.Block, opt Options) (maxDensity int, err error) {
	if !b.Is3D {
		return 0, fmt.Errorf("route: PlaceViasMidpoint on 2D block %s", b.Name)
	}
	region := b.Outline[0].Union(b.Outline[1])
	g, err := NewGrid(region, opt)
	if err != nil {
		return 0, err
	}
	b.NumF2F = 0
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Kind != netlist.Signal || !b.NetIs3D(n) {
			continue
		}
		pins := b.NetPins(n)
		bb := geom.BoundingBox(pins)
		p := bb.Center()
		n.Vias = []geom.Point{p}
		n.Crossings = 1
		b.NumF2F++
		x, y := g.cellAt(p)
		g.viaUse[y*g.nx+x]++
	}
	return g.MaxViaDensity(), nil
}
