// Package route implements a grid-based global router and, on top of it, the
// paper's F2F via placer (§5.1): unlike TSVs, face-to-face vias may sit
// anywhere — including over cells and macros — so placement-style algorithms
// are the wrong tool; instead the two dies are merged into one "2D-like"
// routing graph (plane 0 = bottom-die metal, plane 1 = top-die metal, with
// F2F-via edges between them at every grid cell) and the 3D nets are routed
// by an ordinary 2D router; the points where routes change plane are the F2F
// via locations.
package route

import (
	"fmt"
	"math"
	"sort"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
)

// Options configures the router.
type Options struct {
	// GCell is the routing grid cell edge in drawn µm.
	GCell float64
	// Capacity is the number of routes a gcell absorbs before congestion
	// cost kicks in.
	Capacity int
	// ViaCost is the extra path cost of changing planes (in gcell units);
	// keeps routes from zig-zagging between dies.
	ViaCost float64
	// CongestionCost is the per-overflow additive cost.
	CongestionCost float64
}

// DefaultOptions returns router defaults tuned for block-level F2F routing.
func DefaultOptions() Options {
	return Options{GCell: 2.0, Capacity: 24, ViaCost: 2.0, CongestionCost: 4.0}
}

// Grid is the two-plane routing graph over a block outline.
type Grid struct {
	opt    Options
	region geom.Rect
	nx, ny int
	// usage[plane][y*nx+x] counts routes through the gcell.
	usage [2][]int
	// viaUse[y*nx+x] counts F2F vias dropped in the gcell.
	viaUse []int

	// A* scratch reused across Route2Pin calls. dist/prev entries are valid
	// only where seen carries the current epoch, so starting a new route is
	// one counter bump instead of an O(nodes) re-initialization — the cost
	// per route is proportional to the cells the search actually visits.
	dist     []float64
	prev     []int32
	seen     []int32
	epoch    int32
	frontier []pqItem
}

// NewGrid builds the routing grid over region.
func NewGrid(region geom.Rect, opt Options) (*Grid, error) {
	if opt.GCell <= 0 {
		opt = DefaultOptions()
	}
	nx := int(math.Ceil(region.W() / opt.GCell))
	ny := int(math.Ceil(region.H() / opt.GCell))
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("route: empty routing region %v", region)
	}
	g := &Grid{opt: opt, region: region, nx: nx, ny: ny}
	for p := 0; p < 2; p++ {
		g.usage[p] = make([]int, nx*ny)
	}
	g.viaUse = make([]int, nx*ny)
	return g, nil
}

// Dims returns the gcell grid dimensions.
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// cellAt maps a point to gcell coordinates, clamped.
func (g *Grid) cellAt(p geom.Point) (int, int) {
	x := int((p.X - g.region.Lo.X) / g.opt.GCell)
	y := int((p.Y - g.region.Lo.Y) / g.opt.GCell)
	if x < 0 {
		x = 0
	}
	if x >= g.nx {
		x = g.nx - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.ny {
		y = g.ny - 1
	}
	return x, y
}

// center returns the drawn-space center of gcell (x, y).
func (g *Grid) center(x, y int) geom.Point {
	return geom.Point{
		X: g.region.Lo.X + (float64(x)+0.5)*g.opt.GCell,
		Y: g.region.Lo.Y + (float64(y)+0.5)*g.opt.GCell,
	}
}

// node encodes (plane, y, x) as one integer.
func (g *Grid) node(plane, x, y int) int { return plane*g.nx*g.ny + y*g.nx + x }

func (g *Grid) unnode(n int) (plane, x, y int) {
	sz := g.nx * g.ny
	plane = n / sz
	rem := n % sz
	return plane, rem % g.nx, rem / g.nx
}

// stepCost is the cost of entering gcell (x,y) on plane.
func (g *Grid) stepCost(plane, x, y int) float64 {
	c := 1.0
	u := g.usage[plane][y*g.nx+x]
	if u > g.opt.Capacity {
		c += g.opt.CongestionCost * float64(u-g.opt.Capacity)
	}
	return c
}

// pqItem is an A* frontier entry.
type pqItem struct {
	node int
	f    float64
}

// heapPush appends it and sifts it up, replicating container/heap.Push with
// Less = f-strictly-less: identical swap sequence, so the pop order (ties
// included) matches the previous interface-based heap exactly, without the
// per-push interface{} boxing allocation.
func heapPush(q []pqItem, it pqItem) []pqItem {
	q = append(q, it)
	j := len(q) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(q[j].f < q[i].f) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
	return q
}

// heapPop removes and returns the minimum entry, replicating
// container/heap.Pop (swap root to the end, sift down over the shortened
// prefix, pop the tail).
func heapPop(q []pqItem) ([]pqItem, pqItem) {
	n := len(q) - 1
	q[0], q[n] = q[n], q[0]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && q[r].f < q[l].f {
			j = r
		}
		if !(q[j].f < q[i].f) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	return q[:n], q[n]
}

// RoutedPath is the result of routing one two-pin connection.
type RoutedPath struct {
	// Nodes is the gcell node sequence from source to target.
	Nodes []int
	// LenUm is the drawn routed length in µm.
	LenUm float64
	// Vias are the drawn-space locations where the path changes plane.
	Vias []geom.Point
}

// beginRoute sizes the A* scratch to the grid and opens a fresh visit epoch.
func (g *Grid) beginRoute() {
	n := 2 * g.nx * g.ny
	if len(g.seen) < n {
		g.dist = make([]float64, n)
		g.prev = make([]int32, n)
		g.seen = make([]int32, n)
		g.epoch = 0
	}
	if g.epoch == math.MaxInt32 {
		clear(g.seen)
		g.epoch = 0
	}
	g.epoch++
}

// Route2Pin routes from src (on plane srcPlane) to dst (on plane dstPlane)
// with A*, allowing plane changes (F2F vias) at any gcell. It updates usage.
func (g *Grid) Route2Pin(src geom.Point, srcPlane int, dst geom.Point, dstPlane int) (*RoutedPath, error) {
	sx, sy := g.cellAt(src)
	tx, ty := g.cellAt(dst)
	start := g.node(srcPlane, sx, sy)
	goal := g.node(dstPlane, tx, ty)

	// Epoch-stamped scratch: a node whose seen stamp is stale counts as
	// unvisited (dist = +Inf), so the relaxation below is value-identical to
	// the full-initialization version it replaced.
	g.beginRoute()
	dist, prev, seen, epoch := g.dist, g.prev, g.seen, g.epoch
	dist[start] = 0
	prev[start] = -1
	seen[start] = epoch
	h := func(node int) float64 {
		p, x, y := g.unnode(node)
		d := math.Abs(float64(x-tx)) + math.Abs(float64(y-ty))
		if p != dstPlane {
			d += g.opt.ViaCost
		}
		return d
	}
	relax := func(v, from int, nd float64) bool {
		if seen[v] == epoch && nd >= dist[v] {
			return false
		}
		seen[v] = epoch
		dist[v] = nd
		prev[v] = int32(from)
		return true
	}
	frontier := heapPush(g.frontier[:0], pqItem{start, h(start)})
	for len(frontier) > 0 {
		var it pqItem
		frontier, it = heapPop(frontier)
		if it.node == goal {
			break
		}
		if it.f > dist[it.node]+h(it.node)+1e-9 {
			continue // stale entry
		}
		plane, x, y := g.unnode(it.node)
		// 4-neighborhood on the same plane.
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nxp, nyp := x+d[0], y+d[1]
			if nxp < 0 || nxp >= g.nx || nyp < 0 || nyp >= g.ny {
				continue
			}
			v := g.node(plane, nxp, nyp)
			nd := dist[it.node] + g.stepCost(plane, nxp, nyp)
			if relax(v, it.node, nd) {
				frontier = heapPush(frontier, pqItem{v, nd + h(v)})
			}
		}
		// Plane change (F2F via) in place.
		v := g.node(1-plane, x, y)
		nd := dist[it.node] + g.opt.ViaCost
		if relax(v, it.node, nd) {
			frontier = heapPush(frontier, pqItem{v, nd + h(v)})
		}
	}
	g.frontier = frontier[:0]
	if seen[goal] != epoch {
		return nil, fmt.Errorf("route: no path from %v to %v", src, dst)
	}

	// Recover the path, commit usage, collect via points.
	var nodes []int
	for v := goal; v != -1; v = int(prev[v]) {
		nodes = append(nodes, v)
	}
	// Reverse into source->target order.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	path := &RoutedPath{Nodes: nodes}
	for i, v := range nodes {
		plane, x, y := g.unnode(v)
		g.usage[plane][y*g.nx+x]++
		if i > 0 {
			pp, _, _ := g.unnode(nodes[i-1])
			if pp != plane {
				path.Vias = append(path.Vias, g.center(x, y))
				g.viaUse[y*g.nx+x]++
			} else {
				path.LenUm += g.opt.GCell
			}
		}
	}
	return path, nil
}

// Overflow returns the total gcell usage beyond capacity, a congestion
// metric.
func (g *Grid) Overflow() int {
	total := 0
	for p := 0; p < 2; p++ {
		for _, u := range g.usage[p] {
			if u > g.opt.Capacity {
				total += u - g.opt.Capacity
			}
		}
	}
	return total
}

// MaxViaDensity returns the largest number of F2F vias in any single gcell.
func (g *Grid) MaxViaDensity() int {
	m := 0
	for _, u := range g.viaUse {
		if u > m {
			m = u
		}
	}
	return m
}

// PlaceF2FVias runs the paper's F2F via placement flow on a folded block:
// every die-crossing signal net is routed through the merged two-plane grid
// (2D nets are excluded — the paper ties them to ground so they cannot
// perturb the 3D routes), and the plane-change points become the net's F2F
// vias. Macros are NOT blockages: F2F vias live above the top metal.
// Sets net.Vias/Crossings and b.NumF2F; returns the grid for inspection.
func PlaceF2FVias(b *netlist.Block, opt Options) (*Grid, error) {
	if !b.Is3D {
		return nil, fmt.Errorf("route: PlaceF2FVias on 2D block %s", b.Name)
	}
	region := b.Outline[0].Union(b.Outline[1])
	g, err := NewGrid(region, opt)
	if err != nil {
		return nil, err
	}

	// Route longest nets first (they define the via fabric), like the
	// TSV planner.
	type work struct {
		net  int
		span float64
	}
	var ws []work
	var pins []geom.Point
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Kind != netlist.Signal || !b.NetIs3D(n) {
			continue
		}
		pins = b.AppendNetPins(pins[:0], n)
		ws = append(ws, work{i, geom.HPWL(pins)})
	}
	sort.Slice(ws, func(a, c int) bool { return ws[a].span > ws[c].span })

	b.NumF2F = 0
	for _, w := range ws {
		n := &b.Nets[w.net]
		vias, err := routeNet3D(b, g, n)
		if err != nil {
			return nil, fmt.Errorf("route: net %s: %v", n.Name, err)
		}
		n.Vias = vias
		n.Crossings = len(vias)
		b.NumF2F += len(vias)
	}
	return g, nil
}

// routeNet3D routes one multi-pin 3D net as a driver-rooted star of 2-pin
// connections, merging the plane-change points. A sink on the driver's die
// contributes no via; sinks on the other die route through the merged graph.
func routeNet3D(b *netlist.Block, g *Grid, n *netlist.Net) ([]geom.Point, error) {
	dp := b.PinPos(n.Driver)
	dd := int(b.PinDie(n.Driver))
	var vias []geom.Point
	// The route target is the far-die sink closest to the driver; remaining
	// far-die sinks connect on their own die from the via. A net crosses dies
	// at one (or a few) points, not once per sink; the router shares the
	// crossing.
	var best geom.Point
	haveFar := false
	for _, s := range n.Sinks {
		if int(b.PinDie(s)) != dd {
			p := b.PinPos(s)
			if !haveFar || p.ManhattanDist(dp) < best.ManhattanDist(dp) {
				best = p
				haveFar = true
			}
		}
	}
	if !haveFar {
		return nil, nil
	}
	path, err := g.Route2Pin(dp, dd, best, 1-dd)
	if err != nil {
		return nil, err
	}
	vias = append(vias, path.Vias...)
	if len(vias) == 0 {
		// Degenerate same-cell route; drop the via at the driver location.
		vias = append(vias, dp)
	}
	return vias, nil
}

// PlaceViasMidpoint is the naive baseline for the ablation study: every 3D
// net gets a via at the geometric crossing point with no congestion or
// sharing awareness. Returns the maximum via pile-up on a GCell-sized grid
// so the benchmark can contrast it with the routed flow.
func PlaceViasMidpoint(b *netlist.Block, opt Options) (maxDensity int, err error) {
	if !b.Is3D {
		return 0, fmt.Errorf("route: PlaceViasMidpoint on 2D block %s", b.Name)
	}
	region := b.Outline[0].Union(b.Outline[1])
	g, err := NewGrid(region, opt)
	if err != nil {
		return 0, err
	}
	b.NumF2F = 0
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Kind != netlist.Signal || !b.NetIs3D(n) {
			continue
		}
		pins := b.NetPins(n)
		bb := geom.BoundingBox(pins)
		p := bb.Center()
		n.Vias = []geom.Point{p}
		n.Crossings = 1
		b.NumF2F++
		x, y := g.cellAt(p)
		g.viaUse[y*g.nx+x]++
	}
	return g.MaxViaDensity(), nil
}
