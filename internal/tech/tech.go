// Package tech models the 28nm-class process technology the paper's flow is
// built on: a nine-layer metal stack, a standard-cell library with RVT and
// HVT variants, SRAM memory macros, and the 3D interconnect elements (TSVs
// for face-to-back bonding, F2F vias for face-to-face bonding) with the
// electrical values from the paper's Table 1.
//
// Units: distance µm, resistance Ω, capacitance fF, time ps, power mW
// (leakage stored in nW per cell), energy fJ, voltage V.
package tech

import (
	"fmt"
	"math"
)

// Vdd is the nominal supply voltage of the 28nm process.
const Vdd = 0.9

// CellHeight is the standard-cell row height in µm (9-track library).
const CellHeight = 1.2

// LongWireCellHeights is the paper's long-wire definition: wires longer than
// 100x the standard cell height count as long wires (Table 3).
const LongWireCellHeights = 100

// MetalLayer describes one routing layer of the stack.
type MetalLayer struct {
	Name     string
	Index    int     // 1-based (M1..M9)
	MinWidth float64 // µm
	Pitch    float64 // µm
	ROhmUm   float64 // sheet-derived wire resistance, Ω/µm at min width
	CfFUm    float64 // wire capacitance, fF/µm
	Horiz    bool    // preferred routing direction
}

// MetalStack is the nine-layer 28nm stack. M1-M3 are 1x thin local layers,
// M4-M7 are 2x intermediate layers, M8-M9 are 4x thick global layers. The
// paper routes blocks on M1-M7 (SPC uses all nine) and reserves M8/M9 for
// over-the-block chip routing in F2B designs.
func MetalStack() []MetalLayer {
	mk := func(i int, w, p, r, c float64) MetalLayer {
		return MetalLayer{
			Name: fmt.Sprintf("M%d", i), Index: i,
			MinWidth: w, Pitch: p, ROhmUm: r, CfFUm: c,
			Horiz: i%2 == 0,
		}
	}
	return []MetalLayer{
		mk(1, 0.05, 0.10, 2.2, 0.18),
		mk(2, 0.05, 0.10, 1.8, 0.20),
		mk(3, 0.05, 0.10, 1.8, 0.20),
		mk(4, 0.10, 0.20, 0.45, 0.22),
		mk(5, 0.10, 0.20, 0.45, 0.22),
		mk(6, 0.10, 0.20, 0.45, 0.22),
		mk(7, 0.10, 0.20, 0.45, 0.22),
		mk(8, 0.25, 0.50, 0.11, 0.24),
		mk(9, 0.25, 0.50, 0.11, 0.24),
	}
}

// TSV is the through-silicon-via model for face-to-back bonding
// (paper Table 1; RC per the Katti et al. electrical model).
type TSV struct {
	Diameter float64 // µm
	Height   float64 // µm
	Pitch    float64 // µm, minimum center-to-center spacing
	ROhm     float64 // Ω
	CfF      float64 // fF
}

// F2FVia is the face-to-face via model (paper Table 1). F2F vias sit on top
// of the top metal of both dies and consume no silicon area; their size is
// about twice the minimum top-metal width.
type F2FVia struct {
	Diameter float64 // µm
	Height   float64 // µm
	Pitch    float64 // µm
	ROhm     float64 // Ω
	CfF      float64 // fF
}

// DefaultTSV returns the paper's TSV: 5µm diameter, 25µm height, 10µm pitch.
// The landing pad occupies silicon (placed at M1), so TSVs displace cells and
// cannot sit over macros.
func DefaultTSV() TSV {
	return TSV{Diameter: 5, Height: 25, Pitch: 10, ROhm: 0.047, CfF: 38.0}
}

// DefaultF2FVia returns the paper's F2F via: sub-micron, negligible RC,
// placeable anywhere including over cells and macros.
func DefaultF2FVia() F2FVia {
	return F2FVia{Diameter: 0.5, Height: 1, Pitch: 1, ROhm: 0.1, CfF: 0.25}
}

// VthClass distinguishes the threshold-voltage flavors of the library.
type VthClass int

const (
	// RVT is the regular-Vth baseline flavor.
	RVT VthClass = iota
	// HVT is the high-Vth flavor: about 30% slower, 50% lower leakage and
	// 5% lower internal (cell) power than RVT (paper §6.2).
	HVT
)

// String names the threshold-voltage class (RVT/HVT).
func (v VthClass) String() string {
	if v == HVT {
		return "HVT"
	}
	return "RVT"
}

// HVT derating factors relative to RVT (paper §6.2).
const (
	HVTDelayFactor    = 1.30
	HVTLeakageFactor  = 0.50
	HVTInternalFactor = 0.95
)

// Family identifies a logic function in the library.
type Family int

// The characterized logic families: the combinational set the generator
// instantiates, plus the DFF sequential.
const (
	INV Family = iota
	BUF
	NAND2
	NOR2
	AOI22
	XOR2
	MUX2
	DFF
	numFamilies
)

var familyNames = [...]string{"INV", "BUF", "NAND2", "NOR2", "AOI22", "XOR2", "MUX2", "DFF"}

// String names the logic family as it appears in master names.
func (f Family) String() string {
	if f < 0 || int(f) >= len(familyNames) {
		return fmt.Sprintf("Family(%d)", int(f))
	}
	return familyNames[f]
}

// IsSequential reports whether the family is a register.
func (f Family) IsSequential() bool { return f == DFF }

// IsBuffer reports whether the family is a repeater usable by the optimizer.
func (f Family) IsBuffer() bool { return f == BUF || f == INV }

// NumInputs returns the number of signal input pins of the family
// (for DFF this is the D pin; the clock pin is accounted separately).
func (f Family) NumInputs() int {
	switch f {
	case INV, BUF, DFF:
		return 1
	case NAND2, NOR2, XOR2:
		return 2
	case MUX2:
		return 3
	case AOI22:
		return 4
	}
	return 0
}

// Drives enumerates the drive strengths available for every family.
var Drives = []int{1, 2, 4, 8, 16}

// maxDrive bounds the dense master index in Library.
const maxDrive = 16

// Cell is one library cell: a (family, drive, vth) master with its physical
// and electrical characterization.
type Cell struct {
	Name    string
	Fam     Family
	Drive   int
	Vth     VthClass
	Width   float64 // µm (height is CellHeight)
	InCapfF float64 // input capacitance per signal pin, fF
	ClkCap  float64 // clock-pin capacitance, fF (sequential only)
	DriveR  float64 // equivalent output drive resistance, Ω
	Intr    float64 // intrinsic delay, ps
	LeaknW  float64 // leakage power, nW
	IntCap  float64 // internal switching capacitance, fF (cell power model)
	Setup   float64 // setup time, ps (sequential only)
	ClkQ    float64 // clock-to-Q delay, ps (sequential only)
}

// Area returns the footprint of the cell in µm².
func (c *Cell) Area() float64 { return c.Width * CellHeight }

// familyBase holds the X1 RVT characterization that the generator scales.
type familyBase struct {
	width  float64 // µm
	inCap  float64 // fF per input pin
	driveR float64 // Ω
	intr   float64 // ps
	leak   float64 // nW
	intCap float64 // fF
}

var familyBases = map[Family]familyBase{
	INV:   {width: 0.40, inCap: 0.9, driveR: 5200, intr: 8, leak: 140, intCap: 2.0},
	BUF:   {width: 0.60, inCap: 0.9, driveR: 5000, intr: 16, leak: 220, intCap: 3.6},
	NAND2: {width: 0.60, inCap: 1.0, driveR: 6500, intr: 12, leak: 200, intCap: 3.2},
	NOR2:  {width: 0.60, inCap: 1.1, driveR: 7500, intr: 14, leak: 200, intCap: 3.2},
	AOI22: {width: 1.00, inCap: 1.1, driveR: 8000, intr: 20, leak: 340, intCap: 5.2},
	XOR2:  {width: 1.20, inCap: 1.3, driveR: 7000, intr: 24, leak: 400, intCap: 6.4},
	MUX2:  {width: 1.10, inCap: 1.1, driveR: 6800, intr: 22, leak: 360, intCap: 5.6},
	DFF:   {width: 2.40, inCap: 1.0, driveR: 6000, intr: 0, leak: 800, intCap: 12.8},
}

// Library is the set of characterized cells plus macro and 3D interconnect
// models. Build one with NewLibrary.
type Library struct {
	cells map[string]*Cell
	// byKey is a dense (family, drive, vth) index: the optimizer resolves
	// masters in its inner resize loops, and an array probe is far cheaper
	// than hashing a struct key. Uncharacterized slots stay nil.
	byKey   [numFamilies][maxDrive + 1][2]*Cell
	Metal   []MetalLayer
	TSV     TSV
	F2F     F2FVia
	MacroKB MacroModel
}

// NewLibrary characterizes the full 28nm-class library: every family at
// every drive in both Vth flavors, the nine-metal stack, the Table-1 3D
// interconnects, and the 16KB SRAM macro model.
func NewLibrary() *Library {
	lib := &Library{
		cells:   make(map[string]*Cell),
		Metal:   MetalStack(),
		TSV:     DefaultTSV(),
		F2F:     DefaultF2FVia(),
		MacroKB: DefaultMacroModel(),
	}
	for fam := Family(0); fam < numFamilies; fam++ {
		base := familyBases[fam]
		for _, d := range Drives {
			for _, vth := range []VthClass{RVT, HVT} {
				x := float64(d)
				c := &Cell{
					Fam:   fam,
					Drive: d,
					Vth:   vth,
					// Width grows sub-linearly: shared diffusion and fixed
					// pin overhead amortize at larger drives.
					Width:   base.width * math.Pow(x, 0.85),
					InCapfF: base.inCap * (0.55 + 0.45*x),
					DriveR:  base.driveR / x,
					Intr:    base.intr,
					LeaknW:  base.leak * x,
					IntCap:  base.intCap * (0.4 + 0.6*x),
				}
				if fam == DFF {
					c.ClkCap = 0.8 * (0.7 + 0.3*x)
					c.Setup = 28
					c.ClkQ = 55
				}
				if vth == HVT {
					c.DriveR *= HVTDelayFactor
					c.Intr *= HVTDelayFactor
					c.ClkQ *= HVTDelayFactor
					c.LeaknW *= HVTLeakageFactor
					c.IntCap *= HVTInternalFactor
				}
				c.Name = fmt.Sprintf("%s_X%d_%s", fam, d, vth)
				lib.cells[c.Name] = c
				lib.byKey[fam][d][vth] = c
			}
		}
	}
	return lib
}

// Cell returns the master for (family, drive, vth). It returns an error for
// an uncharacterized drive strength.
func (l *Library) Cell(fam Family, drive int, vth VthClass) (*Cell, error) {
	if fam < 0 || fam >= numFamilies || drive < 0 || drive > maxDrive || vth < 0 || vth > HVT {
		return nil, fmt.Errorf("tech: no cell %s_X%d_%s in library", fam, drive, vth)
	}
	c := l.byKey[fam][drive][vth]
	if c == nil {
		return nil, fmt.Errorf("tech: no cell %s_X%d_%s in library", fam, drive, vth)
	}
	return c, nil
}

// MustCell is Cell but panics on a missing master; use for known-valid keys.
func (l *Library) MustCell(fam Family, drive int, vth VthClass) *Cell {
	c, err := l.Cell(fam, drive, vth)
	if err != nil {
		panic(err)
	}
	return c
}

// ByName returns the master with the given library name.
func (l *Library) ByName(name string) (*Cell, error) {
	c, ok := l.cells[name]
	if !ok {
		return nil, fmt.Errorf("tech: unknown cell %q", name)
	}
	return c, nil
}

// NumCells returns the number of characterized masters.
func (l *Library) NumCells() int { return len(l.cells) }

// Resize returns the master identical to c but with the given drive.
func (l *Library) Resize(c *Cell, drive int) (*Cell, error) {
	return l.Cell(c.Fam, drive, c.Vth)
}

// SwapVth returns the master identical to c but in the given Vth flavor.
func (l *Library) SwapVth(c *Cell, vth VthClass) (*Cell, error) {
	return l.Cell(c.Fam, c.Drive, vth)
}

// NextDriveUp returns the next larger drive, or 0 if c is already maximal.
func NextDriveUp(d int) int {
	for _, x := range Drives {
		if x > d {
			return x
		}
	}
	return 0
}

// NextDriveDown returns the next smaller drive, or 0 if c is already minimal.
func NextDriveDown(d int) int {
	for i := len(Drives) - 1; i >= 0; i-- {
		if Drives[i] < d {
			return Drives[i]
		}
	}
	return 0
}

// Layer returns the metal layer with 1-based index i.
func (l *Library) Layer(i int) (MetalLayer, error) {
	if i < 1 || i > len(l.Metal) {
		return MetalLayer{}, fmt.Errorf("tech: metal layer M%d out of range", i)
	}
	return l.Metal[i-1], nil
}

// LongWireThreshold returns the paper's long-wire length threshold in µm:
// 100x the standard cell height.
func LongWireThreshold() float64 { return LongWireCellHeights * CellHeight }

// MacroModel characterizes the 16KB SRAM memory macro used by the L2 cache
// data banks (32 instances per L2D block in the paper's implementation) and
// other memory-bearing blocks.
type MacroModel struct {
	Name     string
	Width    float64 // µm
	Height   float64 // µm
	Bits     int
	InCapfF  float64 // per data/address pin
	NumPins  int     // signal pins exposed to the block netlist
	AccessPS float64 // access time, ps
	SetupPS  float64 // input setup, ps
	LeakmW   float64 // leakage, mW
	// ReadEnergy is the dynamic energy of one access, fJ; converted to power
	// with the access activity by the power engine.
	ReadEnergyFJ float64
}

// Area returns the macro footprint in µm².
func (m MacroModel) Area() float64 { return m.Width * m.Height }

// DefaultMacroModel returns the 16KB SRAM macro: 128Kbit, roughly
// 115µm x 62µm at 28nm-class density, with access time compatible with the
// 500MHz CPU clock after some margin.
func DefaultMacroModel() MacroModel {
	return MacroModel{
		Name:         "SRAM16KB",
		Width:        115,
		Height:       62,
		Bits:         16 * 1024 * 8,
		InCapfF:      2.5,
		NumPins:      96, // address + data in/out + controls
		AccessPS:     750,
		SetupPS:      120,
		LeakmW:       0.45,
		ReadEnergyFJ: 26000, // ~26pJ per 16KB access, 28nm-class
	}
}

// ScaleModel captures the geometric scale factor between the modeled netlist
// and the physical chip. One modeled cell stands for Scale physical cells;
// layout extents shrink by sqrt(Scale); reported powers are multiplied by
// Scale to represent the full chip.
//
// Wire parasitics per drawn µm are inflated by Scale^RCExp rather than the
// geometric sqrt(Scale): the drawn netlist cannot reproduce the full Rent
// locality of a million-cell design (its nets span a larger fraction of the
// block than physical nets do), so a pure geometric inflation would
// over-weight wire cap, over-insert repeaters and over-count long wires.
// RCExp = 0.30 is calibrated so that, at the default scale, the optimal
// repeater spacing, the long-wire population and the net-power fractions of
// the drawn blocks land in the paper's Table-3 regime. All percentage
// comparisons between design styles are unaffected by the choice (every
// style shares the model); see DESIGN.md §6.
type ScaleModel struct {
	Scale float64
	RCExp float64
}

// DefaultRCExp is the calibrated wire-load inflation exponent.
const DefaultRCExp = 0.30

// NewScaleModel returns the scale model for one-modeled-cell-per-s-cells.
func NewScaleModel(s float64) (ScaleModel, error) {
	if s < 1 {
		return ScaleModel{}, fmt.Errorf("tech: scale must be >= 1, got %g", s)
	}
	return ScaleModel{Scale: s, RCExp: DefaultRCExp}, nil
}

// LinearShrink returns sqrt(Scale), the factor by which drawn distances are
// smaller than physical distances.
func (s ScaleModel) LinearShrink() float64 { return math.Sqrt(s.Scale) }

// RCInflation returns Scale^RCExp, the wire-parasitic inflation per drawn µm.
func (s ScaleModel) RCInflation() float64 {
	e := s.RCExp
	if e == 0 {
		e = DefaultRCExp
	}
	return math.Pow(s.Scale, e)
}

// WireRPerUm returns the effective wire resistance per drawn µm on layer m.
func (s ScaleModel) WireRPerUm(m MetalLayer) float64 { return m.ROhmUm * s.RCInflation() }

// WireCPerUm returns the effective wire capacitance per drawn µm on layer m.
func (s ScaleModel) WireCPerUm(m MetalLayer) float64 { return m.CfFUm * s.RCInflation() }

// LongWireThreshold returns the drawn-space long-wire threshold in µm,
// shrunk consistently with the wire-load calibration.
func (s ScaleModel) LongWireThreshold() float64 {
	return LongWireThreshold() / s.RCInflation()
}

// PowerMultiplier returns the factor converting modeled power to full-chip
// physical power.
func (s ScaleModel) PowerMultiplier() float64 { return s.Scale }

// ClockDomain names one of the two clocks of the T2.
type ClockDomain int

const (
	// CPUClock is the 500MHz core clock domain (paper target frequency).
	CPUClock ClockDomain = iota
	// IOClock is the 250MHz I/O clock domain (NIU and MAC blocks).
	IOClock
)

// String renders the clock domain with its frequency.
func (c ClockDomain) String() string {
	if c == IOClock {
		return "IO"
	}
	return "CPU"
}

// PeriodPS returns the clock period in picoseconds.
func (c ClockDomain) PeriodPS() float64 {
	if c == IOClock {
		return 4000 // 250 MHz
	}
	return 2000 // 500 MHz
}

// FreqMHz returns the clock frequency in MHz.
func (c ClockDomain) FreqMHz() float64 {
	if c == IOClock {
		return 250
	}
	return 500
}

// SwitchEnergyFJ returns the dynamic energy in fJ of charging cap fF through
// a full Vdd swing: E = C * Vdd^2 (fF x V^2 = fJ).
func SwitchEnergyFJ(capfF float64) float64 { return capfF * Vdd * Vdd }

// DynamicPowerMW converts switched capacitance to average power:
// P = 0.5 * alpha * C * Vdd^2 * f. cap in fF, f in MHz, result in mW:
// fF * V^2 * MHz = 1e-15 F * 1e6 1/s * V^2 = 1e-9 W = 1e-6 mW.
func DynamicPowerMW(capfF, activity, freqMHz float64) float64 {
	return 0.5 * activity * capfF * Vdd * Vdd * freqMHz * 1e-6
}
