package tech

import (
	"math"
	"testing"
)

func TestLibraryComplete(t *testing.T) {
	lib := NewLibrary()
	fams := []Family{INV, BUF, NAND2, NOR2, AOI22, XOR2, MUX2, DFF}
	want := len(fams) * len(Drives) * 2
	if lib.NumCells() != want {
		t.Errorf("NumCells = %d, want %d", lib.NumCells(), want)
	}
	for _, fam := range fams {
		for _, d := range Drives {
			for _, vth := range []VthClass{RVT, HVT} {
				c, err := lib.Cell(fam, d, vth)
				if err != nil {
					t.Fatalf("missing %v X%d %v: %v", fam, d, vth, err)
				}
				if c.Width <= 0 || c.InCapfF <= 0 || c.DriveR <= 0 || c.LeaknW <= 0 || c.IntCap <= 0 {
					t.Errorf("%s has non-positive characterization: %+v", c.Name, c)
				}
			}
		}
	}
}

func TestCellLookupByName(t *testing.T) {
	lib := NewLibrary()
	c, err := lib.ByName("NAND2_X4_RVT")
	if err != nil {
		t.Fatal(err)
	}
	if c.Fam != NAND2 || c.Drive != 4 || c.Vth != RVT {
		t.Errorf("wrong cell: %+v", c)
	}
	if _, err := lib.ByName("BOGUS_X1"); err == nil {
		t.Error("expected error for unknown cell")
	}
	if _, err := lib.Cell(INV, 3, RVT); err == nil {
		t.Error("expected error for uncharacterized drive")
	}
}

func TestDriveScalingMonotonic(t *testing.T) {
	lib := NewLibrary()
	for _, fam := range []Family{INV, BUF, NAND2, DFF} {
		var prev *Cell
		for _, d := range Drives {
			c := lib.MustCell(fam, d, RVT)
			if prev != nil {
				if c.Width <= prev.Width {
					t.Errorf("%v width not increasing at X%d", fam, d)
				}
				if c.DriveR >= prev.DriveR {
					t.Errorf("%v drive resistance not decreasing at X%d", fam, d)
				}
				if c.InCapfF <= prev.InCapfF {
					t.Errorf("%v input cap not increasing at X%d", fam, d)
				}
				if c.LeaknW <= prev.LeaknW {
					t.Errorf("%v leakage not increasing at X%d", fam, d)
				}
			}
			prev = c
		}
	}
}

func TestHVTDerating(t *testing.T) {
	lib := NewLibrary()
	rvt := lib.MustCell(NAND2, 4, RVT)
	hvt := lib.MustCell(NAND2, 4, HVT)
	if math.Abs(hvt.DriveR/rvt.DriveR-HVTDelayFactor) > 1e-9 {
		t.Errorf("HVT drive resistance factor = %v", hvt.DriveR/rvt.DriveR)
	}
	if math.Abs(hvt.LeaknW/rvt.LeaknW-HVTLeakageFactor) > 1e-9 {
		t.Errorf("HVT leakage factor = %v", hvt.LeaknW/rvt.LeaknW)
	}
	if math.Abs(hvt.IntCap/rvt.IntCap-HVTInternalFactor) > 1e-9 {
		t.Errorf("HVT internal factor = %v", hvt.IntCap/rvt.IntCap)
	}
	if hvt.Width != rvt.Width {
		t.Error("Vth flavor must not change the footprint")
	}
}

func TestResizeAndSwapVth(t *testing.T) {
	lib := NewLibrary()
	c := lib.MustCell(INV, 2, RVT)
	up, err := lib.Resize(c, 8)
	if err != nil || up.Drive != 8 || up.Fam != INV || up.Vth != RVT {
		t.Errorf("Resize: %+v, %v", up, err)
	}
	hv, err := lib.SwapVth(c, HVT)
	if err != nil || hv.Vth != HVT || hv.Drive != 2 {
		t.Errorf("SwapVth: %+v, %v", hv, err)
	}
}

func TestDriveSteps(t *testing.T) {
	if NextDriveUp(4) != 8 || NextDriveUp(16) != 0 {
		t.Error("NextDriveUp wrong")
	}
	if NextDriveDown(4) != 2 || NextDriveDown(1) != 0 {
		t.Error("NextDriveDown wrong")
	}
}

func TestMetalStack(t *testing.T) {
	stack := MetalStack()
	if len(stack) != 9 {
		t.Fatalf("stack layers = %d", len(stack))
	}
	for i, m := range stack {
		if m.Index != i+1 {
			t.Errorf("layer %d has index %d", i, m.Index)
		}
	}
	// Upper layers are thicker: lower R, wider pitch.
	if stack[8].ROhmUm >= stack[0].ROhmUm {
		t.Error("top metal must have lower resistance than M1")
	}
	if stack[8].Pitch <= stack[0].Pitch {
		t.Error("top metal must have wider pitch than M1")
	}
	lib := NewLibrary()
	if _, err := lib.Layer(0); err == nil {
		t.Error("layer 0 must error")
	}
	if _, err := lib.Layer(10); err == nil {
		t.Error("layer 10 must error")
	}
	m9, err := lib.Layer(9)
	if err != nil || m9.Name != "M9" {
		t.Errorf("Layer(9) = %v, %v", m9, err)
	}
}

func TestTable1Interconnects(t *testing.T) {
	tsv := DefaultTSV()
	via := DefaultF2FVia()
	// Paper Table 1 values.
	if tsv.Diameter != 5 || tsv.Height != 25 || tsv.Pitch != 10 {
		t.Errorf("TSV geometry = %+v", tsv)
	}
	if via.Diameter != 0.5 || via.Height != 1 || via.Pitch != 1 {
		t.Errorf("F2F geometry = %+v", via)
	}
	if tsv.CfF <= 10*via.CfF {
		t.Error("TSV capacitance must dwarf the F2F via's")
	}
}

func TestScaleModel(t *testing.T) {
	if _, err := NewScaleModel(0.5); err == nil {
		t.Error("scale < 1 must error")
	}
	sm, err := NewScaleModel(1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sm.LinearShrink()-math.Sqrt(1000)) > 1e-9 {
		t.Errorf("LinearShrink = %v", sm.LinearShrink())
	}
	if math.Abs(sm.RCInflation()-math.Pow(1000, DefaultRCExp)) > 1e-9 {
		t.Errorf("RCInflation = %v", sm.RCInflation())
	}
	if sm.PowerMultiplier() != 1000 {
		t.Errorf("PowerMultiplier = %v", sm.PowerMultiplier())
	}
	m := MetalStack()[4]
	if sm.WireCPerUm(m) <= m.CfFUm {
		t.Error("effective wire cap must exceed physical at scale > 1")
	}
	// Scale 1 must be identity.
	id, _ := NewScaleModel(1)
	if id.WireCPerUm(m) != m.CfFUm || id.LongWireThreshold() != LongWireThreshold() {
		t.Error("scale 1 must be the identity model")
	}
}

func TestLongWireThreshold(t *testing.T) {
	if LongWireThreshold() != 100*CellHeight {
		t.Errorf("threshold = %v", LongWireThreshold())
	}
}

func TestClockDomains(t *testing.T) {
	if CPUClock.PeriodPS() != 2000 || IOClock.PeriodPS() != 4000 {
		t.Error("periods wrong")
	}
	if CPUClock.FreqMHz() != 500 || IOClock.FreqMHz() != 250 {
		t.Error("frequencies wrong")
	}
	if CPUClock.String() != "CPU" || IOClock.String() != "IO" {
		t.Error("names wrong")
	}
}

func TestDynamicPowerMW(t *testing.T) {
	// 100fF at activity 1, 1000MHz: P = 0.5*1*100e-15*0.81*1e9 W = 40.5µW.
	got := DynamicPowerMW(100, 1, 1000)
	want := 0.5 * 100 * Vdd * Vdd * 1000 * 1e-6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("DynamicPowerMW = %v, want %v", got, want)
	}
	// Linear in each factor.
	if math.Abs(DynamicPowerMW(200, 1, 1000)-2*got) > 1e-12 {
		t.Error("not linear in cap")
	}
	if math.Abs(DynamicPowerMW(100, 0.5, 1000)-got/2) > 1e-12 {
		t.Error("not linear in activity")
	}
}

func TestSwitchEnergy(t *testing.T) {
	if math.Abs(SwitchEnergyFJ(10)-10*Vdd*Vdd) > 1e-12 {
		t.Error("SwitchEnergyFJ wrong")
	}
}

func TestMacroModel(t *testing.T) {
	m := DefaultMacroModel()
	if m.Area() != m.Width*m.Height {
		t.Error("Area wrong")
	}
	if m.Bits != 16*1024*8 {
		t.Errorf("Bits = %d", m.Bits)
	}
	if m.AccessPS <= 0 || m.AccessPS >= CPUClock.PeriodPS() {
		t.Errorf("AccessPS %v must fit within a CPU cycle", m.AccessPS)
	}
}

func TestFamilyProperties(t *testing.T) {
	if !DFF.IsSequential() || INV.IsSequential() {
		t.Error("IsSequential wrong")
	}
	if !BUF.IsBuffer() || !INV.IsBuffer() || NAND2.IsBuffer() {
		t.Error("IsBuffer wrong")
	}
	wantInputs := map[Family]int{INV: 1, BUF: 1, DFF: 1, NAND2: 2, NOR2: 2, XOR2: 2, MUX2: 3, AOI22: 4}
	for fam, n := range wantInputs {
		if fam.NumInputs() != n {
			t.Errorf("%v NumInputs = %d, want %d", fam, fam.NumInputs(), n)
		}
	}
}
