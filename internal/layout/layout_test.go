package layout

import (
	"strings"
	"testing"

	"fold3d/internal/floorplan"
	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

func renderBlock(t *testing.T) *netlist.Block {
	t.Helper()
	lib := tech.NewLibrary()
	b := netlist.NewBlock("lay", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 40, 24)
	b.Outline[1] = b.Outline[0]
	b.AddCell(netlist.Instance{Name: "c0", Master: lib.MustCell(tech.INV, 2, tech.RVT), Pos: geom.Point{X: 2, Y: 1.2}})
	b.AddCell(netlist.Instance{Name: "c1", Master: lib.MustCell(tech.NAND2, 4, tech.RVT), Pos: geom.Point{X: 8, Y: 2.4}, Die: netlist.DieTop})
	mm := lib.MacroKB
	mm.Width, mm.Height = 10, 6
	b.AddMacro(netlist.MacroInst{Name: "m0", Model: mm, Pos: geom.Point{X: 20, Y: 10}})
	b.TSVPads = append(b.TSVPads, geom.RectWH(15, 5, 1, 1))
	b.NumTSV = 1
	return b
}

func TestRenderBlockSVG(t *testing.T) {
	b := renderBlock(t)
	svg := RenderBlockSVG(b, netlist.DieBottom)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(svg, colorMacro) {
		t.Error("macro not rendered")
	}
	if !strings.Contains(svg, colorTSV) {
		t.Error("TSV pad not rendered")
	}
	if !strings.Contains(svg, colorCellBot) {
		t.Error("bottom-die cells not rendered")
	}
	top := RenderBlockSVG(b, netlist.DieTop)
	if !strings.Contains(top, colorCellTop) {
		t.Error("top-die cells not rendered in their color")
	}
}

func TestRenderBlockSVGF2FVias(t *testing.T) {
	b := renderBlock(t)
	b.NumF2F = 1
	b.AddNet(netlist.Net{Name: "n", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: 0},
		Sinks: []netlist.PinRef{{Kind: netlist.KindCell, Idx: 1}},
		Vias:  []geom.Point{{X: 12, Y: 12}}})
	svg := RenderBlockSVG(b, netlist.DieBottom)
	if !strings.Contains(svg, "<circle") || !strings.Contains(svg, colorF2F) {
		t.Error("F2F vias not rendered as dots")
	}
}

func TestRenderChipSVG(t *testing.T) {
	fp := &floorplan.Floorplan{
		Outline: geom.NewRect(0, 0, 100, 80),
		Blocks: map[string]*floorplan.Placed{
			"A": {Name: "A", Rect: geom.RectWH(5, 5, 30, 20)},
			"B": {Name: "B", Rect: geom.RectWH(50, 40, 20, 20), Die: netlist.DieTop},
			"F": {Name: "F", Rect: geom.RectWH(50, 5, 20, 20), Both: true},
		},
		Arrays: []floorplan.TSVArray{{Rect: geom.RectWH(40, 10, 3, 3), Count: 9, Bundle: "A-B"}},
	}
	bot := RenderChipSVG(fp, netlist.DieBottom, nil)
	if !strings.Contains(bot, ">A<") || strings.Contains(bot, ">B<") {
		t.Error("die filtering wrong on bottom render")
	}
	if !strings.Contains(bot, ">F<") {
		t.Error("Both blocks must render on every die")
	}
	if !strings.Contains(bot, colorArray) {
		t.Error("TSV arrays not rendered")
	}
	top := RenderChipSVG(fp, netlist.DieTop, nil)
	if !strings.Contains(top, ">B<") || strings.Contains(top, ">A<") {
		t.Error("die filtering wrong on top render")
	}
}

func TestSummaries(t *testing.T) {
	b := renderBlock(t)
	s := BlockSummary(b)
	if !strings.Contains(s, "lay") || !strings.Contains(s, "1 TSVs") {
		t.Errorf("block summary: %s", s)
	}
	b.Is3D = true
	if !strings.Contains(BlockSummary(b), "3D") {
		t.Error("3D flag missing from summary")
	}
	fp := &floorplan.Floorplan{
		Outline: geom.NewRect(0, 0, 100, 80),
		Blocks: map[string]*floorplan.Placed{
			"A": {Name: "A", Rect: geom.RectWH(0, 0, 10, 10)},
			"F": {Name: "F", Rect: geom.RectWH(20, 0, 10, 10), Both: true},
		},
	}
	cs := ChipSummary(fp)
	if !strings.Contains(cs, "2 blocks (1 folded)") {
		t.Errorf("chip summary: %s", cs)
	}
}
