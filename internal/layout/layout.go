// Package layout renders implemented blocks and chips as SVG and text — the
// repository's stand-in for the paper's GDSII layout shots (Figures 2, 5, 6
// and 8): die outlines, macros, standard cells, TSV landing pads and F2F
// vias, colored per die.
package layout

import (
	"fmt"
	"sort"
	"strings"

	"fold3d/internal/floorplan"
	"fold3d/internal/geom"
	"fold3d/internal/netlist"
)

// Palette used by the SVG renders.
const (
	colorOutline = "#222222"
	colorMacro   = "#7f8fa6"
	colorCellBot = "#f5c542" // yellow: bottom-die cells (paper Figure 5b)
	colorCellTop = "#35c4cf" // cyan: top-die cells
	colorTSV     = "#2e4bde" // blue: TSV landing pads (paper Figure 6)
	colorF2F     = "#e8b00c" // yellow dots: F2F vias (paper Figure 6)
	colorArray   = "#9e2b2b"
	colorBlock   = "#dfe6ee"
)

// svgCanvas accumulates SVG elements in user units (µm).
type svgCanvas struct {
	sb   strings.Builder
	view geom.Rect
}

func newCanvas(view geom.Rect) *svgCanvas {
	c := &svgCanvas{view: view}
	// Flip Y so the layout renders with the origin at the lower left, like
	// every layout viewer.
	fmt.Fprintf(&c.sb, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="%.2f %.2f %.2f %.2f" width="800">`+"\n",
		view.Lo.X, view.Lo.Y, view.W(), view.H())
	fmt.Fprintf(&c.sb, `<g transform="translate(0,%.2f) scale(1,-1)">`+"\n", view.Lo.Y+view.Hi.Y)
	return c
}

func (c *svgCanvas) rect(r geom.Rect, fill, stroke string, strokeW float64, opacity float64) {
	fmt.Fprintf(&c.sb, `<rect x="%.3f" y="%.3f" width="%.3f" height="%.3f" fill="%s" stroke="%s" stroke-width="%.3f" fill-opacity="%.2f"/>`+"\n",
		r.Lo.X, r.Lo.Y, r.W(), r.H(), fill, stroke, strokeW, opacity)
}

func (c *svgCanvas) dot(p geom.Point, radius float64, fill string) {
	fmt.Fprintf(&c.sb, `<circle cx="%.3f" cy="%.3f" r="%.3f" fill="%s"/>`+"\n", p.X, p.Y, radius, fill)
}

func (c *svgCanvas) label(p geom.Point, size float64, text string) {
	// Labels are drawn un-flipped.
	fmt.Fprintf(&c.sb, `<text x="%.3f" y="%.3f" font-size="%.2f" text-anchor="middle" transform="translate(0,%.2f) scale(1,-1) translate(0,%.2f)">%s</text>`+"\n",
		p.X, -p.Y, size, 0.0, 0.0, text)
}

func (c *svgCanvas) String() string {
	return c.sb.String() + "</g></svg>\n"
}

// RenderBlockSVG draws one die of an implemented block: macros, cells
// (colored by die), TSV pads (blue squares) and F2F via points (yellow dots)
// — the paper's Figure 6 contrast between bonding styles.
func RenderBlockSVG(b *netlist.Block, die netlist.Die) string {
	view := b.Outline[die].Expand(b.Outline[die].W() * 0.02)
	c := newCanvas(view)
	c.rect(b.Outline[die], "none", colorOutline, view.W()*0.003, 1)
	for i := range b.Macros {
		if b.Macros[i].Die != die {
			continue
		}
		c.rect(b.Macros[i].Rect(), colorMacro, colorOutline, view.W()*0.001, 0.9)
	}
	for i := range b.Cells {
		cell := &b.Cells[i]
		if cell.Die != die {
			continue
		}
		fill := colorCellBot
		if die == netlist.DieTop {
			fill = colorCellTop
		}
		c.rect(cell.Rect(), fill, "none", 0, 0.8)
	}
	for _, pad := range b.TSVPads {
		c.rect(pad, colorTSV, "none", 0, 0.95)
	}
	viaR := view.W() * 0.004
	for i := range b.Nets {
		for _, v := range b.Nets[i].Vias {
			if b.NumF2F > 0 {
				c.dot(v, viaR, colorF2F)
			}
		}
	}
	return c.String()
}

// RenderChipSVG draws one die of a chip floorplan: block outlines with
// names, TSV arrays, and (optionally) the inter-block nets.
func RenderChipSVG(fp *floorplan.Floorplan, die netlist.Die, nets []floorplan.ChipNet) string {
	view := fp.Outline.Expand(fp.Outline.W() * 0.02)
	c := newCanvas(view)
	c.rect(fp.Outline, "none", colorOutline, view.W()*0.003, 1)
	names := make([]string, 0, len(fp.Blocks))
	for n := range fp.Blocks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := fp.Blocks[n]
		if !p.Both && p.Die != die {
			continue
		}
		c.rect(p.Rect, colorBlock, colorOutline, view.W()*0.0015, 0.9)
		c.label(p.Rect.Center(), p.Rect.H()*0.18, n)
	}
	for _, a := range fp.Arrays {
		c.rect(a.Rect, colorArray, "none", 0, 0.8)
	}
	return c.String()
}

// BlockSummary returns a text description of an implemented block layout —
// the numbers the paper prints next to its layout shots.
func BlockSummary(b *netlist.Block) string {
	var sb strings.Builder
	mode := "2D"
	if b.Is3D {
		mode = "3D"
	}
	fmt.Fprintf(&sb, "%s (%s): outline %.1f x %.1f um", b.Name, mode, b.Outline[0].W(), b.Outline[0].H())
	if b.Is3D {
		fmt.Fprintf(&sb, " x2 dies")
	}
	fmt.Fprintf(&sb, ", %d cells, %d macros, %d nets", len(b.Cells), len(b.Macros), len(b.Nets))
	if b.NumTSV > 0 {
		fmt.Fprintf(&sb, ", %d TSVs", b.NumTSV)
	}
	if b.NumF2F > 0 {
		fmt.Fprintf(&sb, ", %d F2F vias", b.NumF2F)
	}
	return sb.String()
}

// ChipSummary returns a text description of a chip floorplan.
func ChipSummary(fp *floorplan.Floorplan) string {
	both, single := 0, 0
	for _, p := range fp.Blocks {
		if p.Both {
			both++
		} else {
			single++
		}
	}
	return fmt.Sprintf("chip %.0f x %.0f um, %d blocks (%d folded), %d TSV arrays (%d TSVs)",
		fp.Outline.W(), fp.Outline.H(), both+single, both, len(fp.Arrays), fp.NumTSV())
}
