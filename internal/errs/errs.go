// Package errs defines the sentinel errors of the fold3d error contract.
// They live in a leaf package so that every layer — generation (t2),
// folding (core), the flow engine and the public pkg/fold3d surface — can
// wrap them with %w without import cycles, and callers can classify any
// failure with errors.Is regardless of which layer produced it.
package errs

import "errors"

var (
	// ErrUnknownBlock reports a reference to a block name that is not part
	// of the design (an Only entry, a fold target, a floorplan lookup).
	ErrUnknownBlock = errors.New("unknown block")

	// ErrBadOptions reports an invalid configuration value (a scale below 1,
	// a fold mode out of range, missing fold groups).
	ErrBadOptions = errors.New("bad options")

	// ErrCanceled reports that a run stopped because its context was
	// canceled or timed out before the work completed. Errors wrapping it
	// also wrap the context's own error, so errors.Is(err, context.Canceled)
	// or errors.Is(err, context.DeadlineExceeded) hold as appropriate.
	ErrCanceled = errors.New("run canceled")

	// ErrUnknownExperiment reports a request for an experiment name that is
	// not in the exp registry (a -exp flag typo, a stale script, a bad
	// job-request body).
	ErrUnknownExperiment = errors.New("unknown experiment")

	// ErrBadRequest reports caller-supplied input that failed validation
	// before any work started: malformed option values, an unparseable job
	// body, an unknown experiment name. It exists so that transport layers
	// (the fold3dd HTTP daemon) can map failures to client-error statuses
	// with errors.Is instead of string matching; validation errors wrap it
	// alongside the more specific sentinel (ErrBadOptions,
	// ErrUnknownExperiment) when one applies.
	ErrBadRequest = errors.New("bad request")

	// ErrCacheCorrupt reports an on-disk artifact cache entry that failed
	// its header or checksum validation. It is always recoverable: the
	// cache treats the entry as a miss and the flow recomputes the
	// artifact, so callers see it only through cache statistics unless they
	// probe the disk layer directly.
	ErrCacheCorrupt = errors.New("cache entry corrupt")
)
