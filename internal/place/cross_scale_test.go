package place

// Cross-scale fingerprint-equivalence property tests (PR 8): the indexed
// legalizer and the SoA spreading pass must reproduce the pre-PR reference
// implementations (reference_test.go) bit for bit on real t2 netlists at
// two scales — the tier-1 size (scale 1000) and the 10x larger scaling-pass
// regime (scale 100) — in both 2D and folded-3D (two-die) form. Positions
// are compared with exact float equality: any divergence, however small,
// would change downstream fingerprints.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
	"fold3d/internal/t2"
	"fold3d/internal/tech"
)

// crossScaleBlocks returns the blocks the scale-100 equivalence run covers:
// the largest block of each structural family (core, crossbar, MAC, cache
// tag, datapath) so the quadratic reference passes stay affordable under
// -race. Scale 1000 runs every block.
var crossScaleBlocks = map[string]bool{
	"SPC0": true, "CCX": true, "MAC": true, "L2T0": true, "RDP": true,
}

// prepareOutlines sizes die outlines for a raw t2 block (the flow's
// floorplan stage normally does this) and packs its macros in rows from
// the top edge, memory-compiler style, so the legalizer sees realistic
// blockages. The exact shape is irrelevant to the equivalence property —
// both implementations see the same block — it just has to fit.
func prepareOutlines(t *testing.T, b *netlist.Block) {
	t.Helper()
	dies := 1
	if b.Is3D {
		dies = 2
	}
	// Macros all pack on the bottom die, so their area is not divided by
	// the die count.
	area := b.CellArea(-1)/0.6/float64(dies) + b.MacroArea(-1)*1.4
	w := math.Sqrt(area * 1.2)
	if w < 40 {
		w = 40
	}
	for try := 0; try < 8; try++ {
		rows := math.Ceil((area * 1.2 / w) / tech.CellHeight)
		out := geom.NewRect(0, 0, w, rows*tech.CellHeight)
		for d := 0; d < dies; d++ {
			b.Outline[d] = out
		}
		if packMacrosForTest(b, out) {
			return
		}
		w *= 1.3
		area *= 1.1
	}
	t.Fatalf("block %s: could not fit %d macros", b.Name, len(b.Macros))
}

// packMacrosForTest places every macro (all on the bottom die) in rows from
// the top edge down with a 20%% channel; reports whether they fit.
func packMacrosForTest(b *netlist.Block, out geom.Rect) bool {
	if len(b.Macros) == 0 {
		return true
	}
	m0 := b.Macros[0].Model
	chX, chY := m0.Width*0.2, m0.Height*0.2
	x := out.Lo.X + chX
	y := out.Hi.Y - m0.Height - chY
	for i := range b.Macros {
		m := &b.Macros[i]
		if x+m.Model.Width > out.Hi.X {
			x = out.Lo.X + chX
			y -= m.Model.Height + chY
		}
		if y < out.Lo.Y+4*tech.CellHeight {
			return false
		}
		m.Pos = geom.Point{X: x, Y: y}
		m.Die = netlist.DieBottom
		m.Fixed = true
		x += m.Model.Width + chX
	}
	return true
}

// equivalenceCases generates the t2 design at the given scale and yields
// (name, block) pairs in sorted order: every block at scale 1000, the
// crossScaleBlocks subset at other scales, each in 2D form plus a
// synthetic two-die fold of the subset blocks (alternate cells on the top
// die) so the per-die paths are exercised too.
func equivalenceCases(t *testing.T, scale float64) []struct {
	name string
	blk  *netlist.Block
} {
	t.Helper()
	d, err := t2.Generate(t2.Config{Scale: scale, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(d.Blocks))
	for n := range d.Blocks {
		if scale >= 1000 || crossScaleBlocks[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var cases []struct {
		name string
		blk  *netlist.Block
	}
	for _, n := range names {
		blk := d.Blocks[n].Clone()
		prepareOutlines(t, blk)
		cases = append(cases, struct {
			name string
			blk  *netlist.Block
		}{n, blk})
		if crossScaleBlocks[n] {
			f := d.Blocks[n].Clone()
			f.Is3D = true
			for i := range f.Cells {
				if i%2 == 1 && !f.Cells[i].Fixed {
					f.Cells[i].Die = netlist.DieTop
				}
			}
			prepareOutlines(t, f)
			cases = append(cases, struct {
				name string
				blk  *netlist.Block
			}{n + "-3d", f})
		}
	}
	return cases
}

// globalPlace runs the global-placement loop of Place without the final
// legalization, selecting the production or reference spreading pass. The
// wirelength pass is shared: both paths see identical pre-spread state
// each iteration.
func globalPlace(p *Placer, b *netlist.Block, refSpread bool) error {
	dies := []netlist.Die{netlist.DieBottom}
	if b.Is3D {
		dies = append(dies, netlist.DieTop)
	}
	r := rng.New(p.opt.Seed)
	p.seedPositions(b, r)
	grids := make(map[netlist.Die]*densityGrid)
	for _, d := range dies {
		g, err := p.buildDensityGrid(b, d)
		if err != nil {
			return err
		}
		grids[d] = g
	}
	for it := 0; it < p.opt.Iterations; it++ {
		lambda := 0.9 - 0.5*float64(it)/float64(p.opt.Iterations)
		p.wirelengthPass(b, lambda)
		for _, d := range dies {
			if refSpread {
				p.refSpreadPass(b, d, grids[d])
			} else {
				p.spreadPass(b, d, grids[d])
			}
		}
	}
	return nil
}

// requireSamePositions fails the test on the first cell whose position or
// die differs between the two blocks. Exact equality: these positions feed
// the chip fingerprint.
func requireSamePositions(t *testing.T, got, want *netlist.Block) {
	t.Helper()
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("cell count %d != %d", len(got.Cells), len(want.Cells))
	}
	for i := range got.Cells {
		g, w := &got.Cells[i], &want.Cells[i]
		if g.Pos != w.Pos || g.Die != w.Die {
			t.Fatalf("cell %d (%s): got %+v die %d, reference %+v die %d",
				i, g.Name, g.Pos, g.Die, w.Pos, w.Die)
		}
	}
}

// scalesUnderTest is the cross-scale axis; -short keeps only the tier-1
// size so plain `go test` stays quick — check.sh runs the full matrix
// under -race.
func scalesUnderTest(t *testing.T) []float64 {
	if testing.Short() {
		return []float64{1000}
	}
	return []float64{1000, 100}
}

// TestLegalizeMatchesReference: starting from identical globally-placed
// state (production spreading on both clones), the indexed legalizer must
// produce exactly the positions of the pre-PR linear-scan legalizer, and
// the same displacement stats.
func TestLegalizeMatchesReference(t *testing.T) {
	for _, scale := range scalesUnderTest(t) {
		for _, tc := range equivalenceCases(t, scale) {
			t.Run(fmt.Sprintf("scale=%g/%s", scale, tc.name), func(t *testing.T) {
				bNew, bRef := tc.blk.Clone(), tc.blk.Clone()
				pNew, pRef := New(DefaultOptions()), New(DefaultOptions())
				dies := []netlist.Die{netlist.DieBottom}
				if tc.blk.Is3D {
					dies = append(dies, netlist.DieTop)
				}
				if err := globalPlace(pNew, bNew, false); err != nil {
					t.Fatal(err)
				}
				if err := globalPlace(pRef, bRef, false); err != nil {
					t.Fatal(err)
				}
				for _, d := range dies {
					if err := pNew.legalize(bNew, d); err != nil {
						t.Fatal(err)
					}
					if err := pRef.refLegalize(bRef, d); err != nil {
						t.Fatal(err)
					}
				}
				requireSamePositions(t, bNew, bRef)
				if pNew.legalStats != pRef.legalStats {
					t.Fatalf("legal stats %+v != reference %+v", pNew.legalStats, pRef.legalStats)
				}
			})
		}
	}
}

// TestSpreadMatchesReference: the SoA spreading pass (flat position/width
// mirrors, per-bin CDF start indices) must move every cell exactly where
// the pre-PR Instance-chasing, binary-searching pass moved it, over the
// full iteration schedule.
func TestSpreadMatchesReference(t *testing.T) {
	for _, scale := range scalesUnderTest(t) {
		for _, tc := range equivalenceCases(t, scale) {
			t.Run(fmt.Sprintf("scale=%g/%s", scale, tc.name), func(t *testing.T) {
				bNew, bRef := tc.blk.Clone(), tc.blk.Clone()
				if err := globalPlace(New(DefaultOptions()), bNew, false); err != nil {
					t.Fatal(err)
				}
				if err := globalPlace(New(DefaultOptions()), bRef, true); err != nil {
					t.Fatal(err)
				}
				requireSamePositions(t, bNew, bRef)
			})
		}
	}
}
