package place

import (
	"fmt"
	"math"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// foldedBlock builds a two-die block with some die-crossing nets.
func foldedBlock(t *testing.T, crossing int) *netlist.Block {
	t.Helper()
	lib := tech.NewLibrary()
	b := netlist.NewBlock("f", tech.CPUClock)
	b.Is3D = true
	b.Outline[0] = geom.NewRect(0, 0, 40, 40)
	b.Outline[1] = b.Outline[0]
	n := 2 * crossing
	for i := 0; i < n; i++ {
		die := netlist.DieBottom
		if i%2 == 1 {
			die = netlist.DieTop
		}
		b.AddCell(netlist.Instance{
			Name:   fmt.Sprintf("c%d", i),
			Master: lib.MustCell(tech.INV, 2, tech.RVT),
			Pos:    geom.Point{X: 2 + float64(i), Y: 2 + float64(i%30)},
			Die:    die,
		})
	}
	for i := 0; i < crossing; i++ {
		b.AddNet(netlist.Net{
			Name:   fmt.Sprintf("x%d", i),
			Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: int32(2 * i)},
			Sinks:  []netlist.PinRef{{Kind: netlist.KindCell, Idx: int32(2*i + 1)}},
		})
	}
	return b
}

func TestDrawnGeometry(t *testing.T) {
	opt := DefaultTSVPlanOptions(1000)
	shrink := math.Pow(1000, opt.ShrinkExp)
	if math.Abs(opt.DrawnDiameter()-opt.TSV.Diameter/shrink) > 1e-12 {
		t.Errorf("DrawnDiameter = %v", opt.DrawnDiameter())
	}
	if opt.DrawnPitch() <= opt.DrawnDiameter() {
		t.Error("pitch must exceed diameter")
	}
	one := DefaultTSVPlanOptions(1)
	if one.DrawnDiameter() != one.TSV.Diameter {
		t.Error("scale 1 must keep physical TSV geometry")
	}
}

func TestPlanTSVsAssignsEveryCrossingNet(t *testing.T) {
	b := foldedBlock(t, 12)
	if err := PlanTSVs(b, DefaultTSVPlanOptions(1000)); err != nil {
		t.Fatal(err)
	}
	if b.NumTSV != 12 {
		t.Errorf("NumTSV = %d, want 12", b.NumTSV)
	}
	if len(b.TSVPads) != 12 {
		t.Errorf("pads = %d", len(b.TSVPads))
	}
	for i := range b.Nets {
		n := &b.Nets[i]
		if b.NetIs3D(n) {
			if n.Crossings != 1 || len(n.Vias) != 1 {
				t.Errorf("net %s missing via assignment", n.Name)
			}
			if !b.Outline[0].Contains(n.Vias[0]) {
				t.Errorf("via of %s outside outline: %v", n.Name, n.Vias[0])
			}
		}
	}
}

func TestPlanTSVsRespectsPitch(t *testing.T) {
	b := foldedBlock(t, 20)
	opt := DefaultTSVPlanOptions(1000)
	if err := PlanTSVs(b, opt); err != nil {
		t.Fatal(err)
	}
	minPitch := opt.DrawnPitch() - 1e-9
	var pts []geom.Point
	for i := range b.Nets {
		pts = append(pts, b.Nets[i].Vias...)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) < minPitch {
				t.Fatalf("TSVs %v and %v closer than pitch %v", pts[i], pts[j], opt.DrawnPitch())
			}
		}
	}
}

func TestPlanTSVsAvoidsMacros(t *testing.T) {
	b := foldedBlock(t, 10)
	lib := tech.NewLibrary()
	mm := lib.MacroKB
	mm.Width, mm.Height = 20, 20
	b.AddMacro(netlist.MacroInst{Name: "m", Model: mm, Pos: geom.Point{X: 10, Y: 10}, Die: netlist.DieBottom, Fixed: true})
	if err := PlanTSVs(b, DefaultTSVPlanOptions(1000)); err != nil {
		t.Fatal(err)
	}
	macro := b.Macros[0].Rect()
	for _, pad := range b.TSVPads {
		if macro.Overlaps(pad) {
			t.Errorf("TSV pad %v over macro %v", pad, macro)
		}
	}
}

func TestPlanTSVsOn2DBlockErrors(t *testing.T) {
	b := foldedBlock(t, 2)
	b.Is3D = false
	if err := PlanTSVs(b, DefaultTSVPlanOptions(1000)); err == nil {
		t.Error("expected error on 2D block")
	}
}

func TestPlanTSVsRunsOutOfSites(t *testing.T) {
	b := foldedBlock(t, 40)
	b.Outline[0] = geom.NewRect(0, 0, 4, 4) // room for only a few sites
	b.Outline[1] = b.Outline[0]
	if err := PlanTSVs(b, DefaultTSVPlanOptions(1000)); err == nil {
		t.Error("expected site exhaustion error")
	}
}
