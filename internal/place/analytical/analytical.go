// Package analytical implements the registry's second placement backend: an
// electrostatics-style analytical global placer driven by Nesterov-
// accelerated gradient iterations over flat float64 arrays. Its objective is
// the bistratal wirelength model of analytical die-to-die placement (Liao et
// al., arXiv 2310.07424): a net spanning both dies of a folded block is
// priced as the sum of its per-die smooth HPWLs plus the separation between
// the two per-die bounding boxes — the dies are optimized jointly, with no
// shared-plane collapse and no z-penalty term. Density is a per-die
// bin-overflow penalty over the same macro-holes supply map the
// force-directed backend spreads against (place.SupplyGrid), and final
// legalization reuses the shared row legalizer verbatim through the embedded
// place.Placer.
//
// Determinism contract: the placer walks cells, nets and pins strictly in
// netlist index order, keeps every accumulator in flat slices (no maps), and
// draws its seeding randomness from the seeded rng stream — placements are
// byte-identical for identical (block, Options) inputs at any worker count,
// pool temperature or fleet topology.
package analytical

import (
	"fmt"
	"math"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/place"
	"fold3d/internal/rng"
	"fold3d/internal/tech"
)

// Name is the backend's registry name.
const Name = "analytical"

func init() {
	place.MustRegisterBackend(Name, func(opt place.Options) place.Backend { return New(opt) })
}

// Placer is the analytical bistratal backend. It embeds the force-directed
// place.Placer purely for the shared machinery every backend must agree on —
// the row legalizer behind LegalizeAll and the macro-holes supply map — and
// replaces global placement wholesale with the Nesterov loop in Place.
type Placer struct {
	*place.Placer
	opt place.Options

	// Flat per-cell state, indexed by cell index (fixed cells carry their
	// frozen centers so nets read every pin from the same arrays). x/y are
	// the current major solution, vx/vy the Nesterov lookahead reference,
	// gx/gy the gradient at the reference.
	x, y     []float64
	vx, vy   []float64
	gx, gy   []float64
	dgx, dgy []float64 // density-gradient lanes, same indexing

	// Per-net pin scratch, reused across nets (grown to the widest net).
	pinX, pinY  []float64
	pinCell     []int32 // cell index of a movable pin, -1 otherwise
	pinDie      []int8
	wpx, wnx    []float64 // per-pin exp weights, max/min side, x axis
	wpy, wny    []float64 // per-pin exp weights, max/min side, y axis
	demand      [2][]float64
	overflowPsi [2][]float64
}

// New returns an analytical backend with the given options (zero fields get
// the shared place defaults, exactly as place.New does).
func New(opt place.Options) *Placer {
	p := &Placer{Placer: place.New(opt)}
	p.opt = opt.WithDefaults()
	return p
}

// Reinit re-arms the backend for a new block, resetting the embedded
// legalizer and refreshing the options while keeping all scratch capacity.
func (p *Placer) Reinit(opt place.Options) {
	p.Placer.Reinit(opt)
	p.opt = opt.WithDefaults()
}

// Name returns the backend's registry name.
func (p *Placer) Name() string { return Name }

// dieGroup is the per-axis, per-die weighted-average accumulator of one net:
// the smooth max M = Σx·e^{(x-hi)/γ} / Σe^{(x-hi)/γ} and smooth min m
// (mirrored), with the raw sums kept for the gradient distribution pass.
type dieGroup struct {
	n        int
	hi, lo   float64 // exact extrema (exp normalization anchors)
	sp, sxp  float64 // Σw, Σx·w on the max side
	sn, sxn  float64 // Σw, Σx·w on the min side
	smoothHi float64 // sxp/sp
	smoothLo float64 // sxn/sn
}

// Place globally places every movable cell of b with the Nesterov loop and
// hands the result to the shared legalizer. The bistratal objective prices
// each cross-die net's two per-die boxes jointly; single-die blocks
// degenerate to plain smooth-HPWL + density placement.
func (p *Placer) Place(b *netlist.Block) error {
	dies := []netlist.Die{netlist.DieBottom}
	if b.Is3D {
		dies = append(dies, netlist.DieTop)
	}
	for _, d := range dies {
		if b.Outline[d].Area() <= 0 {
			return fmt.Errorf("analytical: block %s has empty outline on die %s", b.Name, d)
		}
	}
	p.seedPositions(b, rng.New(p.opt.Seed))

	n := len(b.Cells)
	p.x = grown(&p.x, n)
	p.y = grown(&p.y, n)
	p.vx = grown(&p.vx, n)
	p.vy = grown(&p.vy, n)
	p.gx = grown(&p.gx, n)
	p.gy = grown(&p.gy, n)
	for i := range b.Cells {
		c := &b.Cells[i]
		p.x[i] = c.Pos.X + c.Master.Width/2
		p.y[i] = c.Pos.Y + tech.CellHeight/2
		p.vx[i], p.vy[i] = p.x[i], p.y[i]
	}

	// Per-die supply grids — identical bins, holes and consumed fixed area
	// as the force backend's spreading, so both backends fight the same
	// density field.
	var grids [2]*geom.Grid
	var supply [2][]float64
	binRef := math.Inf(1)
	for _, d := range dies {
		g, s, err := p.SupplyGrid(b, d)
		if err != nil {
			return err
		}
		grids[d], supply[d] = g, s
		dx, dy := g.BinSize()
		binRef = math.Min(binRef, math.Min(dx, dy))
	}

	// Nesterov over the joint objective W(x) + λ·Φ(x). λ ramps
	// geometrically from a scale calibrated against the first wirelength
	// gradient; γ (the smooth-max temperature) anneals from loose to tight
	// so early iterations see long-range pulls and late ones true HPWL.
	iters := 3 * p.opt.Iterations
	var lambda float64
	ak := 1.0
	for it := 0; it < iters; it++ {
		t := float64(it) / float64(iters-1)
		gamma := binRef * (4.0 * math.Pow(0.125, t))
		wlNorm := p.wirelengthGrad(b, gamma)
		dNorm := p.densityGrad(b, dies, grids, supply)
		if it == 0 {
			lambda = 0.1 * safeRatio(wlNorm, dNorm)
		} else {
			lambda *= math.Pow(200, 1/float64(iters-1))
		}
		gmax := 0.0
		for i := range b.Cells {
			if b.Cells[i].Fixed {
				continue
			}
			gx := p.gx[i] + lambda*p.dgx[i]
			gy := p.gy[i] + lambda*p.dgy[i]
			p.gx[i], p.gy[i] = gx, gy
			gmax = math.Max(gmax, math.Max(math.Abs(gx), math.Abs(gy)))
		}
		if gmax == 0 {
			break
		}
		// Trust-region step: the steepest cell moves one bin per iteration.
		step := binRef / gmax
		ak1 := (1 + math.Sqrt(4*ak*ak+1)) / 2
		mom := (ak - 1) / ak1
		for i := range b.Cells {
			c := &b.Cells[i]
			if c.Fixed {
				continue
			}
			nx := p.vx[i] - step*p.gx[i]
			ny := p.vy[i] - step*p.gy[i]
			p.vx[i] = nx + mom*(nx-p.x[i])
			p.vy[i] = ny + mom*(ny-p.y[i])
			p.x[i], p.y[i] = nx, ny
			out := b.Outline[c.Die]
			hw := c.Master.Width / 2
			p.x[i] = clamp(p.x[i], out.Lo.X+hw, out.Hi.X-hw)
			p.y[i] = clamp(p.y[i], out.Lo.Y+tech.CellHeight/2, out.Hi.Y-tech.CellHeight/2)
			p.vx[i] = clamp(p.vx[i], out.Lo.X+hw, out.Hi.X-hw)
			p.vy[i] = clamp(p.vy[i], out.Lo.Y+tech.CellHeight/2, out.Hi.Y-tech.CellHeight/2)
		}
		ak = ak1
	}

	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Fixed {
			continue
		}
		c.Pos = geom.Point{X: p.x[i] - c.Master.Width/2, Y: p.y[i] - tech.CellHeight/2}
	}
	return p.Placer.LegalizeAll(b)
}

// wirelengthGrad accumulates ∂W/∂(x,y) of every net into gx/gy (overwriting
// them) at the lookahead point vx/vy and returns the summed absolute
// gradient (the λ calibration scale). W is the bistratal objective: per die
// group the weighted-average smooth HPWL, plus — for nets with pins on both
// dies — the positive part of the per-axis gap between the two smooth boxes.
func (p *Placer) wirelengthGrad(b *netlist.Block, gamma float64) float64 {
	n := len(b.Cells)
	for i := 0; i < n; i++ {
		p.gx[i], p.gy[i] = 0, 0
	}
	var norm float64
	for ni := range b.Nets {
		net := &b.Nets[ni]
		k := len(net.Sinks) + 1
		if k < 2 {
			continue
		}
		w := 1.0
		if net.Kind == netlist.Clock {
			w = 0.25 // clock topology is CTS's problem, as in the force backend
		}
		p.pinX = grown(&p.pinX, k)
		p.pinY = grown(&p.pinY, k)
		p.pinCell = grownI32(&p.pinCell, k)
		p.pinDie = grownI8(&p.pinDie, k)
		p.wpx = grown(&p.wpx, k)
		p.wnx = grown(&p.wnx, k)
		p.wpy = grown(&p.wpy, k)
		p.wny = grown(&p.wny, k)
		loadPin := func(j int, pr netlist.PinRef) {
			if pr.Kind == netlist.KindCell {
				p.pinX[j], p.pinY[j] = p.vx[pr.Idx], p.vy[pr.Idx]
				if b.Cells[pr.Idx].Fixed {
					p.pinCell[j] = -1
				} else {
					p.pinCell[j] = pr.Idx
				}
			} else {
				pt := b.PinPos(pr)
				p.pinX[j], p.pinY[j] = pt.X, pt.Y
				p.pinCell[j] = -1
			}
			p.pinDie[j] = int8(b.PinDie(pr))
		}
		loadPin(0, net.Driver)
		for s, pr := range net.Sinks {
			loadPin(s+1, pr)
		}

		var gr [2][2]dieGroup // [die][axis]
		for j := 0; j < k; j++ {
			d := p.pinDie[j]
			for ax := 0; ax < 2; ax++ {
				v := p.pinX[j]
				if ax == 1 {
					v = p.pinY[j]
				}
				g := &gr[d][ax]
				if g.n == 0 {
					g.hi, g.lo = v, v
				} else {
					g.hi = math.Max(g.hi, v)
					g.lo = math.Min(g.lo, v)
				}
				g.n++
			}
		}
		for j := 0; j < k; j++ {
			d := p.pinDie[j]
			ex := math.Exp((p.pinX[j] - gr[d][0].hi) / gamma)
			en := math.Exp((gr[d][0].lo - p.pinX[j]) / gamma)
			p.wpx[j], p.wnx[j] = ex, en
			gr[d][0].sp += ex
			gr[d][0].sxp += p.pinX[j] * ex
			gr[d][0].sn += en
			gr[d][0].sxn += p.pinX[j] * en
			ey := math.Exp((p.pinY[j] - gr[d][1].hi) / gamma)
			eny := math.Exp((gr[d][1].lo - p.pinY[j]) / gamma)
			p.wpy[j], p.wny[j] = ey, eny
			gr[d][1].sp += ey
			gr[d][1].sxp += p.pinY[j] * ey
			gr[d][1].sn += eny
			gr[d][1].sxn += p.pinY[j] * eny
		}
		for d := 0; d < 2; d++ {
			for ax := 0; ax < 2; ax++ {
				g := &gr[d][ax]
				if g.n > 0 {
					g.smoothHi = g.sxp / g.sp
					g.smoothLo = g.sxn / g.sn
				}
			}
		}
		// Gap activation per axis: the two boxes are disjoint in at most
		// one ordering; gapSign says which die's min is being pulled down
		// toward the other die's max (0 = none).
		bistratal := gr[0][0].n > 0 && gr[1][0].n > 0
		var gapSign [2]int // per axis: +1 die0.lo>die1.hi, -1 die1.lo>die0.hi
		if bistratal {
			for ax := 0; ax < 2; ax++ {
				if gr[0][ax].smoothLo > gr[1][ax].smoothHi {
					gapSign[ax] = +1
				} else if gr[1][ax].smoothLo > gr[0][ax].smoothHi {
					gapSign[ax] = -1
				}
			}
		}
		for j := 0; j < k; j++ {
			ci := p.pinCell[j]
			if ci < 0 {
				continue
			}
			d := int(p.pinDie[j])
			// x axis
			g := &gr[d][0]
			dMax := p.wpx[j] / g.sp * (1 + (p.pinX[j]-g.smoothHi)/gamma)
			dMin := p.wnx[j] / g.sn * (1 - (p.pinX[j]-g.smoothLo)/gamma)
			gx := dMax - dMin
			if s := gapSign[0]; s != 0 {
				if (s > 0) == (d == 0) {
					gx += dMin // this die's min side is the gap's upper edge
				} else {
					gx -= dMax
				}
			}
			// y axis
			g = &gr[d][1]
			dMaxY := p.wpy[j] / g.sp * (1 + (p.pinY[j]-g.smoothHi)/gamma)
			dMinY := p.wny[j] / g.sn * (1 - (p.pinY[j]-g.smoothLo)/gamma)
			gy := dMaxY - dMinY
			if s := gapSign[1]; s != 0 {
				if (s > 0) == (d == 0) {
					gy += dMinY
				} else {
					gy -= dMaxY
				}
			}
			p.gx[ci] += w * gx
			p.gy[ci] += w * gy
			norm += math.Abs(w*gx) + math.Abs(w*gy)
		}
	}
	return norm
}

// densityGrad computes the per-die bin-overflow gradient at the lookahead
// point into dgx/dgy and returns its summed absolute value. Each movable
// cell deposits its area bilinearly onto the four bins around its center;
// overfilled bins (demand above the macro-holes supply) push their cells
// outward along the overflow slope, so cells drain out of macro holes and
// congested regions exactly where the supply map says there is no room.
func (p *Placer) densityGrad(b *netlist.Block, dies []netlist.Die, grids [2]*geom.Grid, supply [2][]float64) float64 {
	n := len(b.Cells)
	p.dgx = grown(&p.dgx, n)
	p.dgy = grown(&p.dgy, n)
	for _, d := range dies {
		nb := grids[d].NumBins()
		dem := grown(&p.demand[d], nb)
		for i := range dem {
			dem[i] = 0
		}
		p.overflowPsi[d] = grown(&p.overflowPsi[d], nb)
	}
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Fixed {
			p.dgx[i], p.dgy[i] = 0, 0
			continue
		}
		g := grids[c.Die]
		area := c.Master.Area()
		ix, iy, ix2, iy2, tx, ty := bilinear(g, p.vx[i], p.vy[i])
		dem := p.demand[c.Die]
		dem[g.Index(ix, iy)] += area * (1 - tx) * (1 - ty)
		dem[g.Index(ix2, iy)] += area * tx * (1 - ty)
		dem[g.Index(ix, iy2)] += area * (1 - tx) * ty
		dem[g.Index(ix2, iy2)] += area * tx * ty
	}
	for _, d := range dies {
		g := grids[d]
		dx, dy := g.BinSize()
		binArea := dx * dy
		dem, sup, psi := p.demand[d], supply[d], p.overflowPsi[d]
		for i := range dem {
			psi[i] = 0
			if over := dem[i] - sup[i]; over > 0 {
				psi[i] = over / binArea // overflow in bin-area units
			}
		}
	}
	var norm float64
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Fixed {
			continue
		}
		g := grids[c.Die]
		dx, dy := g.BinSize()
		area := c.Master.Area()
		ix, iy, ix2, iy2, tx, ty := bilinear(g, p.vx[i], p.vy[i])
		psi := p.overflowPsi[c.Die]
		p00 := psi[g.Index(ix, iy)]
		p10 := psi[g.Index(ix2, iy)]
		p01 := psi[g.Index(ix, iy2)]
		p11 := psi[g.Index(ix2, iy2)]
		// ∂Φ/∂x with Φ = Σ_b ψ_b·overlap_b: moving right transfers weight
		// from the left bin pair to the right pair at rate 1/dx.
		gx := area / dx * ((p10-p00)*(1-ty) + (p11-p01)*ty)
		gy := area / dy * ((p01-p00)*(1-tx) + (p11-p10)*tx)
		p.dgx[i], p.dgy[i] = gx, gy
		norm += math.Abs(gx) + math.Abs(gy)
	}
	return norm
}

// bilinear maps a point to its lower-left bin-center cell (ix,iy), its
// upper-right neighbor (ix2,iy2) and the fractional offsets (tx,ty) toward
// that neighbor, clamped so every deposit target exists. On a degenerate
// axis (a grid one bin wide or tall) the neighbor collapses onto the cell
// itself with zero fractional weight, so the axis simply carries no
// density gradient.
func bilinear(g *geom.Grid, x, y float64) (ix, iy, ix2, iy2 int, tx, ty float64) {
	dx, dy := g.BinSize()
	fx := (x-g.Region.Lo.X)/dx - 0.5
	fy := (y-g.Region.Lo.Y)/dy - 0.5
	ix = int(math.Floor(fx))
	iy = int(math.Floor(fy))
	tx = fx - float64(ix)
	ty = fy - float64(iy)
	if ix < 0 {
		ix, tx = 0, 0
	}
	if ix > g.NX-2 {
		ix = g.NX - 2
		tx = 1
		if ix < 0 { // single-column grid
			ix, tx = 0, 0
		}
	}
	if iy < 0 {
		iy, ty = 0, 0
	}
	if iy > g.NY-2 {
		iy = g.NY - 2
		ty = 1
		if iy < 0 { // single-row grid
			iy, ty = 0, 0
		}
	}
	ix2, iy2 = ix, iy
	if ix+1 <= g.NX-1 {
		ix2 = ix + 1
	}
	if iy+1 <= g.NY-1 {
		iy2 = iy + 1
	}
	return ix, iy, ix2, iy2, tx, ty
}

// seedPositions mirrors the force backend's seeding: movable cells at the
// origin draw a uniform position inside their die outline from the seeded
// stream; cells that already carry a position keep it (clamped).
func (p *Placer) seedPositions(b *netlist.Block, r *rng.R) {
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Fixed {
			continue
		}
		out := b.Outline[c.Die]
		if c.Pos.X == 0 && c.Pos.Y == 0 {
			c.Pos = geom.Point{
				X: r.Range(out.Lo.X, out.Hi.X-c.Master.Width),
				Y: r.Range(out.Lo.Y, out.Hi.Y-tech.CellHeight),
			}
		} else {
			c.Pos = geom.Point{
				X: clamp(c.Pos.X, out.Lo.X, out.Hi.X-c.Master.Width),
				Y: clamp(c.Pos.Y, out.Lo.Y, out.Hi.Y-tech.CellHeight),
			}
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// safeRatio returns a/b guarded against a zero or vanishing denominator.
func safeRatio(a, b float64) float64 {
	if b <= 1e-12 {
		return 1
	}
	return a / b
}

// grown reslices *s to exactly n elements, reallocating only when the
// capacity is short, and writes the result back through the pointer so the
// stored slice never carries a stale length from a bigger block.
func grown(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	} else {
		*s = (*s)[:n]
	}
	return *s
}

func grownI32(s *[]int32, n int) []int32 {
	if cap(*s) < n {
		*s = make([]int32, n)
	} else {
		*s = (*s)[:n]
	}
	return *s
}

func grownI8(s *[]int8, n int) []int8 {
	if cap(*s) < n {
		*s = make([]int8, n)
	} else {
		*s = (*s)[:n]
	}
	return *s
}
