package analytical

import (
	"fmt"
	"math"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/place"
	"fold3d/internal/rng"
	"fold3d/internal/tech"
)

// buildBlock makes a placeable block with n cells on one or two dies and
// chained random nets; 3D blocks alternate cells across dies so most nets
// cross, exercising the bistratal objective.
func buildBlock(t *testing.T, n int, threeD bool, seed uint64) *netlist.Block {
	t.Helper()
	lib := tech.NewLibrary()
	r := rng.New(seed)
	b := netlist.NewBlock("ab", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 60, 60)
	if threeD {
		b.Is3D = true
		b.Outline[1] = geom.NewRect(0, 0, 60, 60)
	}
	for i := 0; i < n; i++ {
		fam := tech.NAND2
		if i%7 == 0 {
			fam = tech.DFF
		}
		inst := netlist.Instance{
			Name:   fmt.Sprintf("c%d", i),
			Master: lib.MustCell(fam, 2, tech.RVT),
		}
		if threeD && i%2 == 1 {
			inst.Die = netlist.DieTop
		}
		b.AddCell(inst)
	}
	for i := 0; i < n; i++ {
		k := 1 + r.Intn(2)
		var sinks []netlist.PinRef
		for s := 0; s < k; s++ {
			j := r.Intn(n)
			if j == i {
				continue
			}
			sinks = append(sinks, netlist.PinRef{Kind: netlist.KindCell, Idx: int32(j)})
		}
		if len(sinks) == 0 {
			continue
		}
		b.AddNet(netlist.Net{
			Name:   fmt.Sprintf("n%d", i),
			Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: int32(i)},
			Sinks:  sinks,
		})
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

// positions renders every cell position to one comparable string.
func positions(b *netlist.Block) string {
	s := ""
	for i := range b.Cells {
		s += fmt.Sprintf("%d %.9f %.9f %d\n", i, b.Cells[i].Pos.X, b.Cells[i].Pos.Y, b.Cells[i].Die)
	}
	return s
}

// TestPlaceDeterministic pins the backend's core contract: identical
// (block, Options) inputs produce byte-identical placements — including
// when the placer instance is reused across blocks (the flow's pooling
// path), so no scratch state may leak between runs.
func TestPlaceDeterministic(t *testing.T) {
	for _, threeD := range []bool{false, true} {
		a := buildBlock(t, 300, threeD, 11)
		b := buildBlock(t, 300, threeD, 11)
		p := New(place.DefaultOptions())
		if err := p.Place(a); err != nil {
			t.Fatal(err)
		}
		// Reuse the same instance after a bigger interleaved block, the way
		// the flow's pool does: the second run must still match.
		big := buildBlock(t, 800, threeD, 3)
		if err := p.Place(big); err != nil {
			t.Fatal(err)
		}
		p.Reinit(place.DefaultOptions())
		if err := p.Place(b); err != nil {
			t.Fatal(err)
		}
		if positions(a) != positions(b) {
			t.Errorf("threeD=%v: reused placer diverged from fresh placer", threeD)
		}
	}
}

// TestPlaceLegalAndContained checks the handoff contract: the result is
// legalized (the shared legalizer ran) and every cell sits inside its
// die's outline on the die it started on.
func TestPlaceLegalAndContained(t *testing.T) {
	b := buildBlock(t, 400, true, 5)
	wantDie := make([]netlist.Die, len(b.Cells))
	for i := range b.Cells {
		wantDie[i] = b.Cells[i].Die
	}
	if err := New(place.DefaultOptions()).Place(b); err != nil {
		t.Fatal(err)
	}
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die != wantDie[i] {
			t.Fatalf("cell %s moved dies: placement must not re-partition", c.Name)
		}
		if !b.Outline[c.Die].ContainsRect(c.Rect()) {
			t.Errorf("cell %s outside outline: %v vs %v", c.Name, c.Rect(), b.Outline[c.Die])
		}
		rowOff := (c.Pos.Y - b.Outline[c.Die].Lo.Y) / tech.CellHeight
		if diff := math.Abs(rowOff - math.Round(rowOff)); diff > 1e-6 {
			t.Errorf("cell %s not row-aligned: y=%v", c.Name, c.Pos.Y)
		}
	}
}

// TestPlaceImprovesWirelength sanity-checks the objective actually pulls:
// the placed HPWL must beat a purely random seeding by a clear margin.
func TestPlaceImprovesWirelength(t *testing.T) {
	seeded := buildBlock(t, 500, false, 9)
	p := New(place.DefaultOptions())
	p.seedPositions(seeded, rng.New(place.DefaultOptions().Seed))
	random := place.HPWL(seeded)

	placed := buildBlock(t, 500, false, 9)
	if err := p.Place(placed); err != nil {
		t.Fatal(err)
	}
	got := place.HPWL(placed)
	if got >= 0.8*random {
		t.Errorf("placed HPWL %.1f did not clearly beat random seeding %.1f", got, random)
	}
}
