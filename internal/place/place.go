// Package place implements the mixed-size (3D) placer of the paper's §4.2:
// an iterative analytical placer alternating quadratic-wirelength pulls with
// supply/demand density spreading, where hard macros are modeled as holes in
// the supply/demand map (supply = demand = 0 over the macro), which avoids
// the whitespace halos that demand-reduction schemes leave around very large
// macros. A two-die (3D) mode places folded blocks: both tiers share the XY
// plane, each object carries a die assignment, and inter-die nets pull their
// endpoints together exactly as intra-die nets do (the "ideal 3D
// interconnect" assumption under which the F2F via placer later routes).
package place

import (
	"fmt"
	"math"
	"sort"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
	"fold3d/internal/tech"
)

// MacroMode selects how the density map treats hard macros.
type MacroMode int

const (
	// MacroHoles zeroes both supply and demand over macros (the paper's
	// method, §4.2): cells flow around macros with no halo.
	MacroHoles MacroMode = iota
	// MacroDemand models a macro as a large placeable demand with reduced
	// weight (the Kraftwerk2-style tactic the paper found insufficient for
	// very large macros). Kept for the ablation benchmark.
	MacroDemand
)

// Options configures a placement run.
type Options struct {
	Iterations int     // global placement iterations
	TargetUtil float64 // target placement density in non-macro area
	BinCells   float64 // desired average cells per density bin
	Macro      MacroMode
	// DemandFactor is the macro demand weight under MacroDemand mode.
	DemandFactor float64
	Seed         uint64
}

// DefaultOptions returns the flow defaults.
func DefaultOptions() Options {
	return Options{
		Iterations:   36,
		TargetUtil:   0.72,
		BinCells:     24,
		Macro:        MacroHoles,
		DemandFactor: 0.8,
		Seed:         7,
	}
}

// Placer runs global placement and legalization on one block.
type Placer struct {
	opt        Options
	legalStats LegalStats
}

// New returns a Placer with the given options.
func New(opt Options) *Placer {
	if opt.Iterations <= 0 {
		opt.Iterations = DefaultOptions().Iterations
	}
	if opt.TargetUtil <= 0 || opt.TargetUtil > 1 {
		opt.TargetUtil = DefaultOptions().TargetUtil
	}
	if opt.BinCells <= 0 {
		opt.BinCells = DefaultOptions().BinCells
	}
	return &Placer{opt: opt}
}

// Place globally places and legalizes every movable cell of b inside its die
// outline(s). Macros and fixed cells are respected as blockages. Ports stay
// where the floorplan put them.
func (p *Placer) Place(b *netlist.Block) error {
	dies := []netlist.Die{netlist.DieBottom}
	if b.Is3D {
		dies = append(dies, netlist.DieTop)
	}
	for _, d := range dies {
		if b.Outline[d].Area() <= 0 {
			return fmt.Errorf("place: block %s has empty outline on die %s", b.Name, d)
		}
	}

	r := rng.New(p.opt.Seed)
	p.seedPositions(b, r)

	grids := make(map[netlist.Die]*densityGrid)
	for _, d := range dies {
		g, err := p.buildDensityGrid(b, d)
		if err != nil {
			return err
		}
		grids[d] = g
	}

	for it := 0; it < p.opt.Iterations; it++ {
		// Cooling: early iterations favor wirelength, later ones density.
		lambda := 0.9 - 0.5*float64(it)/float64(p.opt.Iterations)
		p.wirelengthPass(b, lambda)
		for _, d := range dies {
			p.spreadPass(b, d, grids[d])
		}
	}
	for _, d := range dies {
		if err := p.legalize(b, d); err != nil {
			return err
		}
	}
	return nil
}

// LegalizeAll re-legalizes every movable cell from its current position,
// without global placement. The flow uses it after CTS and repeater
// insertion drop new cells at ideal (overlapping) locations, and after TSV
// pads claim placement area.
func (p *Placer) LegalizeAll(b *netlist.Block) error {
	dies := []netlist.Die{netlist.DieBottom}
	if b.Is3D {
		dies = append(dies, netlist.DieTop)
	}
	for _, d := range dies {
		if err := p.legalize(b, d); err != nil {
			return err
		}
	}
	return nil
}

// seedPositions gives every movable cell an initial random position inside
// its die outline; cells that already have a nonzero position (incremental
// placement after optimization inserted buffers) keep it.
func (p *Placer) seedPositions(b *netlist.Block, r *rng.R) {
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Fixed {
			continue
		}
		out := b.Outline[c.Die]
		if c.Pos.X == 0 && c.Pos.Y == 0 {
			c.Pos = geom.Point{
				X: r.Range(out.Lo.X, out.Hi.X-c.Master.Width),
				Y: r.Range(out.Lo.Y, out.Hi.Y-tech.CellHeight),
			}
		} else {
			c.Pos = clampCell(out, c)
		}
	}
}

func clampCell(out geom.Rect, c *netlist.Instance) geom.Point {
	return geom.Point{
		X: math.Min(math.Max(c.Pos.X, out.Lo.X), out.Hi.X-c.Master.Width),
		Y: math.Min(math.Max(c.Pos.Y, out.Lo.Y), out.Hi.Y-tech.CellHeight),
	}
}

// wirelengthPass moves every movable cell toward the weighted centroid of
// its nets' other pins (one Jacobi sweep of the quadratic star model). Nets
// spanning dies pull through the shared XY plane — this is exactly the
// "ideal 3D interconnect" pull of the paper's folding placer. lambda damps
// the move.
func (p *Placer) wirelengthPass(b *netlist.Block, lambda float64) {
	n := len(b.Cells)
	sumX := make([]float64, n)
	sumY := make([]float64, n)
	sumW := make([]float64, n)

	for ni := range b.Nets {
		net := &b.Nets[ni]
		pins := make([]netlist.PinRef, 0, len(net.Sinks)+1)
		pins = append(pins, net.Driver)
		pins = append(pins, net.Sinks...)
		if len(pins) < 2 {
			continue
		}
		// Star model: every pin attracts toward the net centroid with
		// weight 1/(k-1).
		var cx, cy float64
		for _, pr := range pins {
			pt := b.PinPos(pr)
			cx += pt.X
			cy += pt.Y
		}
		k := float64(len(pins))
		cx /= k
		cy /= k
		w := 1.0 / (k - 1)
		if net.Kind == netlist.Clock {
			w *= 0.25 // clock nets are CTS's problem; don't let them clump logic
		}
		for _, pr := range pins {
			if pr.Kind != netlist.KindCell {
				continue
			}
			c := &b.Cells[pr.Idx]
			if c.Fixed {
				continue
			}
			sumX[pr.Idx] += w * cx
			sumY[pr.Idx] += w * cy
			sumW[pr.Idx] += w
		}
	}

	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Fixed || sumW[i] == 0 {
			continue
		}
		tx := sumX[i]/sumW[i] - c.Master.Width/2
		ty := sumY[i]/sumW[i] - tech.CellHeight/2
		c.Pos.X += lambda * (tx - c.Pos.X)
		c.Pos.Y += lambda * (ty - c.Pos.Y)
		c.Pos = clampCell(b.Outline[c.Die], c)
	}
}

// densityGrid holds the per-bin placement supply for one die.
type densityGrid struct {
	grid   *geom.Grid
	supply []float64 // available placement area per bin
}

// buildDensityGrid computes the supply map of die d: bin area times target
// utilization, with macro overlaps handled per the macro mode. Under
// MacroHoles the macro-covered area contributes zero supply (a hole).
func (p *Placer) buildDensityGrid(b *netlist.Block, d netlist.Die) (*densityGrid, error) {
	out := b.Outline[d]
	// Bin count: aim for ~BinCells cells per bin, at least 4x4.
	nCells := 0
	for i := range b.Cells {
		if b.Cells[i].Die == d {
			nCells++
		}
	}
	nb := int(math.Sqrt(float64(nCells)/p.opt.BinCells)) + 1
	if nb < 4 {
		nb = 4
	}
	g, err := geom.NewGrid(out, nb, nb)
	if err != nil {
		return nil, fmt.Errorf("place: block %s die %s: %v", b.Name, d, err)
	}
	dg := &densityGrid{grid: g, supply: make([]float64, g.NumBins())}
	for i := range dg.supply {
		ix, iy := g.Coords(i)
		dg.supply[i] = g.BinRect(ix, iy).Area() * p.opt.TargetUtil
	}
	for i := range b.Macros {
		m := &b.Macros[i]
		if m.Die != d {
			continue
		}
		blockArea := m.Rect()
		switch p.opt.Macro {
		case MacroHoles:
			// Hole: remove the full overlapped supply.
			g.OverlapBins(blockArea, func(ix, iy int, area float64) {
				idx := g.Index(ix, iy)
				dg.supply[idx] -= area / p.opt.TargetUtil * p.opt.TargetUtil
				if dg.supply[idx] < 0 {
					dg.supply[idx] = 0
				}
			})
		case MacroDemand:
			// Demand-reduction: macro consumes only DemandFactor of its
			// area, leaving phantom supply that attracts cells which
			// legalization must then evict (halos).
			g.OverlapBins(blockArea, func(ix, iy int, area float64) {
				idx := g.Index(ix, iy)
				dg.supply[idx] -= area * p.opt.DemandFactor
				if dg.supply[idx] < 0 {
					dg.supply[idx] = 0
				}
			})
		}
	}
	// Fixed cells and TSV landing pads also consume supply. TSV pads block
	// both dies (the via body pierces the top silicon; the pad sits at M1 of
	// the bottom die).
	consume := func(r geom.Rect) {
		g.OverlapBins(r, func(ix, iy int, area float64) {
			idx := g.Index(ix, iy)
			dg.supply[idx] -= area
			if dg.supply[idx] < 0 {
				dg.supply[idx] = 0
			}
		})
	}
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die == d && c.Fixed {
			consume(c.Rect())
		}
	}
	for _, pad := range b.TSVPads {
		consume(pad)
	}
	return dg, nil
}

// spreadPass performs one FastPlace-style cell-shifting step on die d: the
// x (then y) coordinate distribution of cell area is remapped so that the
// cumulative demand tracks the cumulative supply. Zero-supply spans (macro
// holes) are jumped over, which is precisely the behaviour the paper needs
// for the L2D memory-bank folding.
func (p *Placer) spreadPass(b *netlist.Block, d netlist.Die, dg *densityGrid) {
	g := dg.grid
	// --- X direction: per bin row ---
	for iy := 0; iy < g.NY; iy++ {
		p.shift1D(b, d, g, dg, iy, true)
	}
	// --- Y direction: per bin column ---
	for ix := 0; ix < g.NX; ix++ {
		p.shift1D(b, d, g, dg, ix, false)
	}
}

// shift1D remaps the coordinate of the cells in one bin row (horiz=true) or
// column (horiz=false) so demand matches supply cumulatively.
func (p *Placer) shift1D(b *netlist.Block, d netlist.Die, g *geom.Grid, dg *densityGrid, lane int, horiz bool) {
	n := g.NX
	if !horiz {
		n = g.NY
	}
	demand := make([]float64, n)
	supply := make([]float64, n)
	var cells []int

	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die != d || c.Fixed {
			continue
		}
		ix, iy := g.BinAt(c.Center())
		if horiz && iy == lane {
			demand[ix] += c.Master.Area()
			cells = append(cells, i)
		} else if !horiz && ix == lane {
			demand[iy] += c.Master.Area()
			cells = append(cells, i)
		}
	}
	if len(cells) == 0 {
		return
	}
	for k := 0; k < n; k++ {
		var idx int
		if horiz {
			idx = g.Index(k, lane)
		} else {
			idx = g.Index(lane, k)
		}
		supply[k] = dg.supply[idx] + 1e-9
	}

	// Cumulative distributions along the lane.
	cumD := make([]float64, n+1)
	cumS := make([]float64, n+1)
	for k := 0; k < n; k++ {
		cumD[k+1] = cumD[k] + demand[k]
		cumS[k+1] = cumS[k] + supply[k]
	}
	totD, totS := cumD[n], cumS[n]
	if totD <= 0 {
		return
	}

	lo := g.Region.Lo.X
	binSz, _ := g.BinSize()
	if !horiz {
		lo = g.Region.Lo.Y
		_, binSz = g.BinSize()
	}

	// Map a coordinate through: u = demand CDF at coord (scaled), then find
	// coord' where supply CDF reaches u * totS/totD.
	remap := func(coord float64) float64 {
		f := (coord - lo) / binSz
		k := int(f)
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		frac := f - float64(k)
		u := (cumD[k] + frac*demand[k]) / totD * totS
		// Invert supply CDF.
		j := sort.Search(n, func(j int) bool { return cumS[j+1] >= u }) // first bin whose cum reaches u
		if j >= n {
			j = n - 1
		}
		var t float64
		if supply[j] > 0 {
			t = (u - cumS[j]) / supply[j]
		}
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return lo + (float64(j)+t)*binSz
	}

	const alpha = 0.55 // damping of the shift
	for _, i := range cells {
		c := &b.Cells[i]
		ctr := c.Center()
		if horiz {
			nx := remap(ctr.X)
			c.Pos.X += alpha * (nx - ctr.X)
		} else {
			ny := remap(ctr.Y)
			c.Pos.Y += alpha * (ny - ctr.Y)
		}
		c.Pos = clampCell(b.Outline[d], c)
	}
}

// HPWL returns the total half-perimeter wirelength of all signal nets of b
// (3D nets measured in the shared XY plane), the placer's objective value.
func HPWL(b *netlist.Block) float64 {
	var wl float64
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Kind != netlist.Signal {
			continue
		}
		wl += geom.HPWL(b.NetPins(n))
	}
	return wl
}
