// Package place implements the mixed-size (3D) placer of the paper's §4.2:
// an iterative analytical placer alternating quadratic-wirelength pulls with
// supply/demand density spreading, where hard macros are modeled as holes in
// the supply/demand map (supply = demand = 0 over the macro), which avoids
// the whitespace halos that demand-reduction schemes leave around very large
// macros. A two-die (3D) mode places folded blocks: both tiers share the XY
// plane, each object carries a die assignment, and inter-die nets pull their
// endpoints together exactly as intra-die nets do (the "ideal 3D
// interconnect" assumption under which the F2F via placer later routes).
package place

import (
	"fmt"
	"math"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
	"fold3d/internal/tech"
)

// MacroMode selects how the density map treats hard macros.
type MacroMode int

const (
	// MacroHoles zeroes both supply and demand over macros (the paper's
	// method, §4.2): cells flow around macros with no halo.
	MacroHoles MacroMode = iota
	// MacroDemand models a macro as a large placeable demand with reduced
	// weight (the Kraftwerk2-style tactic the paper found insufficient for
	// very large macros). Kept for the ablation benchmark.
	MacroDemand
)

// Options configures a placement run.
type Options struct {
	Iterations int     // global placement iterations
	TargetUtil float64 // target placement density in non-macro area
	BinCells   float64 // desired average cells per density bin
	Macro      MacroMode
	// DemandFactor is the macro demand weight under MacroDemand mode.
	DemandFactor float64
	Seed         uint64
}

// DefaultOptions returns the flow defaults.
func DefaultOptions() Options {
	return Options{
		Iterations:   36,
		TargetUtil:   0.72,
		BinCells:     24,
		Macro:        MacroHoles,
		DemandFactor: 0.8,
		Seed:         7,
	}
}

// Placer runs global placement and legalization on one block.
type Placer struct {
	opt        Options
	legalStats LegalStats

	// Scratch reused across placement passes. Contents are fully
	// rewritten on every use; sharing one Placer between goroutines is
	// not supported (the flow builds one Placer per block).
	wlX, wlY, wlW      []float64 // wirelengthPass centroid accumulators
	ctrX, ctrY         []float64 // wirelengthPass flat cell-center cache
	laneOf             []int32   // spreadPass: lane of each cell
	laneOff, laneCells []int32   // spreadPass: CSR cells-per-lane buckets
	demand, supply     []float64 // shift1D per-lane densities
	cumD, cumS         []float64 // shift1D cumulative distributions
	jlo                []int32   // shift1D per-demand-bin supply-CDF start index
	// SoA mirror of the movable cells of the die being spread, filled by
	// bucketLanes and read by shift1D so the remap loops stream over flat
	// float64 slices instead of chasing Instance/Master pointers. soaX/soaY
	// are the lower-left positions, soaHW/soaW the master half-width and
	// width, soaArea the master area. Indexed by cell index; entries of
	// cells not in the sweep are stale.
	soaX, soaY  []float64
	soaHW, soaW []float64
	soaArea     []float64
	ids         []int32 // legalize cell-order scratch
	rowsSc      rowScratch
}

// New returns a Placer with the given options.
func New(opt Options) *Placer {
	p := &Placer{}
	p.Reinit(opt)
	return p
}

// WithDefaults returns o with every unset (zero or out-of-range) tuning
// field replaced by its DefaultOptions value — the normalization New and
// Reinit apply before a run. Backends outside this package use it so their
// view of the options matches what the shared legalizer runs with.
func (o Options) WithDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = DefaultOptions().Iterations
	}
	if o.TargetUtil <= 0 || o.TargetUtil > 1 {
		o.TargetUtil = DefaultOptions().TargetUtil
	}
	if o.BinCells <= 0 {
		o.BinCells = DefaultOptions().BinCells
	}
	return o
}

// Reinit re-arms the placer for a new block: fresh options (zero fields get
// defaults, as in New) and cleared legalization stats, keeping every scratch
// buffer for capacity reuse. A reinitialized placer behaves exactly like a
// newly constructed one.
func (p *Placer) Reinit(opt Options) {
	p.opt = opt.WithDefaults()
	p.legalStats = LegalStats{}
}

// Place globally places and legalizes every movable cell of b inside its die
// outline(s). Macros and fixed cells are respected as blockages. Ports stay
// where the floorplan put them.
func (p *Placer) Place(b *netlist.Block) error {
	dies := []netlist.Die{netlist.DieBottom}
	if b.Is3D {
		dies = append(dies, netlist.DieTop)
	}
	for _, d := range dies {
		if b.Outline[d].Area() <= 0 {
			return fmt.Errorf("place: block %s has empty outline on die %s", b.Name, d)
		}
	}

	r := rng.New(p.opt.Seed)
	p.seedPositions(b, r)

	grids := make(map[netlist.Die]*densityGrid)
	for _, d := range dies {
		g, err := p.buildDensityGrid(b, d)
		if err != nil {
			return err
		}
		grids[d] = g
	}

	for it := 0; it < p.opt.Iterations; it++ {
		// Cooling: early iterations favor wirelength, later ones density.
		lambda := 0.9 - 0.5*float64(it)/float64(p.opt.Iterations)
		p.wirelengthPass(b, lambda)
		for _, d := range dies {
			p.spreadPass(b, d, grids[d])
		}
	}
	for _, d := range dies {
		if err := p.legalize(b, d); err != nil {
			return err
		}
	}
	return nil
}

// LegalizeAll re-legalizes every movable cell from its current position,
// without global placement. The flow uses it after CTS and repeater
// insertion drop new cells at ideal (overlapping) locations, and after TSV
// pads claim placement area.
func (p *Placer) LegalizeAll(b *netlist.Block) error {
	dies := []netlist.Die{netlist.DieBottom}
	if b.Is3D {
		dies = append(dies, netlist.DieTop)
	}
	for _, d := range dies {
		if err := p.legalize(b, d); err != nil {
			return err
		}
	}
	return nil
}

// seedPositions gives every movable cell an initial random position inside
// its die outline; cells that already have a nonzero position (incremental
// placement after optimization inserted buffers) keep it.
func (p *Placer) seedPositions(b *netlist.Block, r *rng.R) {
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Fixed {
			continue
		}
		out := b.Outline[c.Die]
		if c.Pos.X == 0 && c.Pos.Y == 0 {
			c.Pos = geom.Point{
				X: r.Range(out.Lo.X, out.Hi.X-c.Master.Width),
				Y: r.Range(out.Lo.Y, out.Hi.Y-tech.CellHeight),
			}
		} else {
			c.Pos = clampCell(out, c)
		}
	}
}

// resetF64 returns a zeroed length-n float64 slice backed by *s, growing
// the backing array only when capacity runs out.
func resetF64(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
		return *s
	}
	v := (*s)[:n]
	clear(v)
	return v
}

// grownF64 is resetF64 without the clear, for scratch whose used entries
// are fully overwritten before being read.
func grownF64(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
		return *s
	}
	return (*s)[:n]
}

func clampCell(out geom.Rect, c *netlist.Instance) geom.Point {
	// Branch form of min(max(v, lo), hi); math.Min/Max don't inline and
	// this is the hottest little function of the placer.
	x, y := c.Pos.X, c.Pos.Y
	if x < out.Lo.X {
		x = out.Lo.X
	}
	if hi := out.Hi.X - c.Master.Width; x > hi {
		x = hi
	}
	if y < out.Lo.Y {
		y = out.Lo.Y
	}
	if hi := out.Hi.Y - tech.CellHeight; y > hi {
		y = hi
	}
	return geom.Point{X: x, Y: y}
}

// wirelengthPass moves every movable cell toward the weighted centroid of
// its nets' other pins (one Jacobi sweep of the quadratic star model). Nets
// spanning dies pull through the shared XY plane — this is exactly the
// "ideal 3D interconnect" pull of the paper's folding placer. lambda damps
// the move.
func (p *Placer) wirelengthPass(b *netlist.Block, lambda float64) {
	n := len(b.Cells)
	sumX := resetF64(&p.wlX, n)
	sumY := resetF64(&p.wlY, n)
	sumW := resetF64(&p.wlW, n)

	// Snapshot every cell center into flat slices once per pass: the pin
	// loops below then stream over float64 arrays instead of dispatching
	// through PinPos and dereferencing Instance/Master per pin (each cell
	// is touched by ~3 pins on average). Positions don't change until the
	// update loop, so the cache equals what PinPos would have returned.
	ctrX := grownF64(&p.ctrX, n)
	ctrY := grownF64(&p.ctrY, n)
	for i := range b.Cells {
		c := &b.Cells[i]
		ctrX[i] = c.Pos.X + c.Master.Width/2
		ctrY[i] = c.Pos.Y + tech.CellHeight/2
	}
	pinX := func(pr netlist.PinRef) (float64, float64) {
		if pr.Kind == netlist.KindCell {
			return ctrX[pr.Idx], ctrY[pr.Idx]
		}
		pt := b.PinPos(pr)
		return pt.X, pt.Y
	}

	for ni := range b.Nets {
		net := &b.Nets[ni]
		if len(net.Sinks) == 0 {
			continue
		}
		// Star model: every pin attracts toward the net centroid with
		// weight 1/(k-1). Pins visit in driver-then-sinks order, the same
		// order a combined pin slice would give, so the sums are
		// bit-identical to the materialized version.
		cx, cy := pinX(net.Driver)
		for _, pr := range net.Sinks {
			x, y := pinX(pr)
			cx += x
			cy += y
		}
		k := float64(len(net.Sinks) + 1)
		cx /= k
		cy /= k
		w := 1.0 / (k - 1)
		if net.Kind == netlist.Clock {
			w *= 0.25 // clock nets are CTS's problem; don't let them clump logic
		}
		// Fixed cells accumulate too: their sums are never read (the update
		// loop below skips Fixed), and dropping the per-pin Fixed lookup
		// removes a random Instance-array load from the hottest loop.
		wcx, wcy := w*cx, w*cy
		if pr := net.Driver; pr.Kind == netlist.KindCell {
			sumX[pr.Idx] += wcx
			sumY[pr.Idx] += wcy
			sumW[pr.Idx] += w
		}
		for _, pr := range net.Sinks {
			if pr.Kind == netlist.KindCell {
				sumX[pr.Idx] += wcx
				sumY[pr.Idx] += wcy
				sumW[pr.Idx] += w
			}
		}
	}

	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Fixed || sumW[i] == 0 {
			continue
		}
		tx := sumX[i]/sumW[i] - c.Master.Width/2
		ty := sumY[i]/sumW[i] - tech.CellHeight/2
		c.Pos.X += lambda * (tx - c.Pos.X)
		c.Pos.Y += lambda * (ty - c.Pos.Y)
		c.Pos = clampCell(b.Outline[c.Die], c)
	}
}

// densityGrid holds the per-bin placement supply for one die.
type densityGrid struct {
	grid   *geom.Grid
	supply []float64 // available placement area per bin
}

// buildDensityGrid computes the supply map of die d: bin area times target
// utilization, with macro overlaps handled per the macro mode. Under
// MacroHoles the macro-covered area contributes zero supply (a hole).
func (p *Placer) buildDensityGrid(b *netlist.Block, d netlist.Die) (*densityGrid, error) {
	out := b.Outline[d]
	// Bin count: aim for ~BinCells cells per bin, at least 4x4.
	nCells := 0
	for i := range b.Cells {
		if b.Cells[i].Die == d {
			nCells++
		}
	}
	nb := int(math.Sqrt(float64(nCells)/p.opt.BinCells)) + 1
	if nb < 4 {
		nb = 4
	}
	g, err := geom.NewGrid(out, nb, nb)
	if err != nil {
		return nil, fmt.Errorf("place: block %s die %s: %v", b.Name, d, err)
	}
	dg := &densityGrid{grid: g, supply: make([]float64, g.NumBins())}
	for i := range dg.supply {
		ix, iy := g.Coords(i)
		dg.supply[i] = g.BinRect(ix, iy).Area() * p.opt.TargetUtil
	}
	for i := range b.Macros {
		m := &b.Macros[i]
		if m.Die != d {
			continue
		}
		blockArea := m.Rect()
		switch p.opt.Macro {
		case MacroHoles:
			// Hole: remove the full overlapped supply.
			g.OverlapBins(blockArea, func(ix, iy int, area float64) {
				idx := g.Index(ix, iy)
				dg.supply[idx] -= area / p.opt.TargetUtil * p.opt.TargetUtil
				if dg.supply[idx] < 0 {
					dg.supply[idx] = 0
				}
			})
		case MacroDemand:
			// Demand-reduction: macro consumes only DemandFactor of its
			// area, leaving phantom supply that attracts cells which
			// legalization must then evict (halos).
			g.OverlapBins(blockArea, func(ix, iy int, area float64) {
				idx := g.Index(ix, iy)
				dg.supply[idx] -= area * p.opt.DemandFactor
				if dg.supply[idx] < 0 {
					dg.supply[idx] = 0
				}
			})
		}
	}
	// Fixed cells and TSV landing pads also consume supply. TSV pads block
	// both dies (the via body pierces the top silicon; the pad sits at M1 of
	// the bottom die).
	consume := func(r geom.Rect) {
		g.OverlapBins(r, func(ix, iy int, area float64) {
			idx := g.Index(ix, iy)
			dg.supply[idx] -= area
			if dg.supply[idx] < 0 {
				dg.supply[idx] = 0
			}
		})
	}
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die == d && c.Fixed {
			consume(c.Rect())
		}
	}
	for _, pad := range b.TSVPads {
		consume(pad)
	}
	return dg, nil
}

// SupplyGrid builds the density-supply map of die d — bin area at the
// target utilization with macros as holes (or reduced demand), fixed cells
// and TSV pads consumed — and returns the grid with the per-bin supply
// areas. It is the same map the force-directed spreading uses; alternative
// backends (the analytical bistratal placer) call it so every backend
// spreads against identical supply, macro holes included.
func (p *Placer) SupplyGrid(b *netlist.Block, d netlist.Die) (*geom.Grid, []float64, error) {
	dg, err := p.buildDensityGrid(b, d)
	if err != nil {
		return nil, nil, err
	}
	return dg.grid, dg.supply, nil
}

// spreadPass performs one FastPlace-style cell-shifting step on die d: the
// x (then y) coordinate distribution of cell area is remapped so that the
// cumulative demand tracks the cumulative supply. Zero-supply spans (macro
// holes) are jumped over, which is precisely the behaviour the paper needs
// for the L2D memory-bank folding.
func (p *Placer) spreadPass(b *netlist.Block, d netlist.Die, dg *densityGrid) {
	g := dg.grid
	// --- X direction: per bin row. Row membership depends only on Y,
	// which the X shifts leave untouched, so one bucketing serves every
	// lane of the sweep. ---
	p.bucketLanes(b, d, g, true)
	for iy := 0; iy < g.NY; iy++ {
		p.shift1D(b, d, g, dg, iy, true)
	}
	// --- Y direction: per bin column (re-bucketed — the X sweep moved
	// cells across columns) ---
	p.bucketLanes(b, d, g, false)
	for ix := 0; ix < g.NX; ix++ {
		p.shift1D(b, d, g, dg, ix, false)
	}
}

// bucketLanes groups the movable cells of die d by bin row (horiz=true) or
// bin column (horiz=false) into the laneOff/laneCells CSR scratch. Cells
// keep index order within each lane — the same visit order the previous
// scan-all-cells-per-lane implementation produced — so the per-bin demand
// sums and per-cell shifts of shift1D stay bit-identical.
func (p *Placer) bucketLanes(b *netlist.Block, d netlist.Die, g *geom.Grid, horiz bool) {
	lanes := g.NY
	if !horiz {
		lanes = g.NX
	}
	if cap(p.laneOff) < lanes+1 {
		p.laneOff = make([]int32, lanes+1)
	}
	off := p.laneOff[:lanes+1]
	clear(off)
	if cap(p.laneOf) < len(b.Cells) {
		p.laneOf = make([]int32, len(b.Cells))
		p.laneCells = make([]int32, len(b.Cells))
	}
	laneOf := p.laneOf[:len(b.Cells)]
	soaX := grownF64(&p.soaX, len(b.Cells))
	soaY := grownF64(&p.soaY, len(b.Cells))
	soaHW := grownF64(&p.soaHW, len(b.Cells))
	soaW := grownF64(&p.soaW, len(b.Cells))
	soaArea := grownF64(&p.soaArea, len(b.Cells))
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die != d || c.Fixed {
			laneOf[i] = -1
			continue
		}
		// One streaming pass over the instances snapshots everything the
		// shift loops need into the flat SoA mirror; within a sweep each
		// cell is read once before its single write, so the snapshot stays
		// equal to the live value at every read the old code performed.
		w := c.Master.Width
		soaX[i], soaY[i] = c.Pos.X, c.Pos.Y
		soaHW[i], soaW[i] = w/2, w
		soaArea[i] = c.Master.Area()
		// Only one axis decides the lane; BinX/BinY run the same arithmetic
		// as the matching half of BinAt, so the lane index is unchanged.
		var lane int
		if horiz {
			lane = g.BinY(c.Pos.Y + tech.CellHeight/2)
		} else {
			lane = g.BinX(c.Pos.X + w/2)
		}
		laneOf[i] = int32(lane)
		off[lane+1]++
	}
	for k := 0; k < lanes; k++ {
		off[k+1] += off[k]
	}
	// Fill using off[lane] as a moving cursor, then shift the array back
	// one slot so off[lane] is the lane's start offset again.
	cells := p.laneCells[:len(b.Cells)]
	for i, lane := range laneOf {
		if lane < 0 {
			continue
		}
		cells[off[lane]] = int32(i)
		off[lane]++
	}
	for k := lanes; k > 0; k-- {
		off[k] = off[k-1]
	}
	off[0] = 0
}

// shift1D remaps the coordinate of the cells in one bin row (horiz=true) or
// column (horiz=false) so demand matches supply cumulatively. The lane's
// cells come from the CSR buckets a preceding bucketLanes call built.
func (p *Placer) shift1D(b *netlist.Block, d netlist.Die, g *geom.Grid, dg *densityGrid, lane int, horiz bool) {
	cells := p.laneCells[p.laneOff[lane]:p.laneOff[lane+1]]
	if len(cells) == 0 {
		return
	}
	n := g.NX
	if !horiz {
		n = g.NY
	}
	demand := resetF64(&p.demand, n) // accumulated below, needs the clear
	supply := grownF64(&p.supply, n) // every entry assigned below
	soaX, soaY := p.soaX, p.soaY
	soaHW, soaW, soaArea := p.soaHW, p.soaW, p.soaArea

	// The demand and mapping loops are specialized per axis below: the
	// branch-free bodies stream over the SoA slices, and only the axis that
	// matters is binned (BinX/BinY match the corresponding half of BinAt).
	if horiz {
		for _, ci := range cells {
			demand[g.BinX(soaX[ci]+soaHW[ci])] += soaArea[ci]
		}
	} else {
		for _, ci := range cells {
			demand[g.BinY(soaY[ci]+tech.CellHeight/2)] += soaArea[ci]
		}
	}
	for k := 0; k < n; k++ {
		var idx int
		if horiz {
			idx = g.Index(k, lane)
		} else {
			idx = g.Index(lane, k)
		}
		supply[k] = dg.supply[idx] + 1e-9
	}

	// Cumulative distributions along the lane (fully assigned, no clear).
	cumD := grownF64(&p.cumD, n+1)
	cumS := grownF64(&p.cumS, n+1)
	cumD[0], cumS[0] = 0, 0
	for k := 0; k < n; k++ {
		cumD[k+1] = cumD[k] + demand[k]
		cumS[k+1] = cumS[k] + supply[k]
	}
	totD, totS := cumD[n], cumS[n]
	if totD <= 0 {
		return
	}

	// Per-demand-bin start index into the supply CDF: jlo[k] is the first j
	// with cumS[j+1] >= cumD[k]/totD*totS. A cell binned in k maps to a u at
	// or past that point (u < cumD[k]-scaled only when the cell clamps below
	// bin 0, where jlo[0] is 0 anyway), so the inversion below can scan
	// linearly from jlo[k] instead of binary-searching the whole lane — it
	// still finds the exact same first-crossing index, only cheaper. Both
	// sequences are monotone, so one merge sweep fills the table.
	jlo := grownI32(&p.jlo, n)
	for k, j := 0, 0; k < n; k++ {
		u0 := cumD[k] / totD * totS
		for j < n && cumS[j+1] < u0 {
			j++
		}
		jlo[k] = int32(j)
	}

	lo := g.Region.Lo.X
	binSz, _ := g.BinSize()
	if !horiz {
		lo = g.Region.Lo.Y
		_, binSz = g.BinSize()
	}

	// Map each cell's coordinate through: u = demand CDF at coord (scaled),
	// then find coord' where supply CDF reaches u * totS/totD. The mapping
	// body lives in the loop (it is the hottest path of the placer), once
	// per axis; both the mapping arithmetic and the inlined clampCell run
	// identical operations on identical inputs as the generic version, so
	// every position stays bit-identical.
	const alpha = 0.55 // damping of the shift
	out := b.Outline[d]
	if horiz {
		for _, i := range cells {
			px, py := soaX[i], soaY[i]
			coord := px + soaHW[i]
			f := (coord - lo) / binSz
			k := int(f)
			if k < 0 {
				k = 0
			}
			if k >= n {
				k = n - 1
			}
			frac := f - float64(k)
			u := (cumD[k] + frac*demand[k]) / totD * totS
			// Invert supply CDF: first bin whose cum reaches u, scanning
			// from the bin's precomputed lower bound (same index the old
			// binary search produced).
			j := int(jlo[k])
			for j < n && cumS[j+1] < u {
				j++
			}
			if j >= n {
				j = n - 1
			}
			var t float64
			if supply[j] > 0 {
				t = (u - cumS[j]) / supply[j]
			}
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			mapped := lo + (float64(j)+t)*binSz
			px += alpha * (mapped - coord)
			if px < out.Lo.X {
				px = out.Lo.X
			}
			if hi := out.Hi.X - soaW[i]; px > hi {
				px = hi
			}
			if py < out.Lo.Y {
				py = out.Lo.Y
			}
			if hi := out.Hi.Y - tech.CellHeight; py > hi {
				py = hi
			}
			b.Cells[i].Pos = geom.Point{X: px, Y: py}
		}
		return
	}
	for _, i := range cells {
		px, py := soaX[i], soaY[i]
		coord := py + tech.CellHeight/2
		f := (coord - lo) / binSz
		k := int(f)
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		frac := f - float64(k)
		u := (cumD[k] + frac*demand[k]) / totD * totS
		j := int(jlo[k])
		for j < n && cumS[j+1] < u {
			j++
		}
		if j >= n {
			j = n - 1
		}
		var t float64
		if supply[j] > 0 {
			t = (u - cumS[j]) / supply[j]
		}
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		mapped := lo + (float64(j)+t)*binSz
		py += alpha * (mapped - coord)
		if px < out.Lo.X {
			px = out.Lo.X
		}
		if hi := out.Hi.X - soaW[i]; px > hi {
			px = hi
		}
		if py < out.Lo.Y {
			py = out.Lo.Y
		}
		if hi := out.Hi.Y - tech.CellHeight; py > hi {
			py = hi
		}
		b.Cells[i].Pos = geom.Point{X: px, Y: py}
	}
}

// HPWL returns the total half-perimeter wirelength of all signal nets of b
// (3D nets measured in the shared XY plane), the placer's objective value.
func HPWL(b *netlist.Block) float64 {
	var wl float64
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Kind != netlist.Signal {
			continue
		}
		wl += geom.HPWL(b.NetPins(n))
	}
	return wl
}
