package place

// Pre-PR 8 reference implementations, kept verbatim for the cross-scale
// equivalence property tests: the indexed/SoA hot paths must reproduce these
// bit for bit (TestLegalizeMatchesReference, TestSpreadMatchesReference).
// They are test-only code — the flow never calls them.

import (
	"fmt"
	"math"
	"slices"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// refLegalize is the pre-PR 8 legalizer: greedy tetris with a full linear
// scan over every segment of each candidate row.
func (p *Placer) refLegalize(b *netlist.Block, d netlist.Die) error {
	out := b.Outline[d]
	rows, err := buildRows(b, d, &p.rowsSc)
	if err != nil {
		return err
	}
	nRows := len(rows)

	ids := p.ids[:0]
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die == d && !c.Fixed {
			ids = append(ids, int32(i))
		}
	}
	slices.SortFunc(ids, func(a, c int32) int {
		ca, cc := &b.Cells[a], &b.Cells[c]
		switch {
		case ca.Pos.X < cc.Pos.X:
			return -1
		case ca.Pos.X > cc.Pos.X:
			return 1
		case ca.Pos.Y < cc.Pos.Y:
			return -1
		case ca.Pos.Y > cc.Pos.Y:
			return 1
		}
		return int(a - c)
	})
	p.ids = ids

	for _, i := range ids {
		c := &b.Cells[i]
		w := c.Master.Width
		desired := c.Pos
		rDes := int((desired.Y - out.Lo.Y) / tech.CellHeight)
		if rDes < 0 {
			rDes = 0
		}
		if rDes >= nRows {
			rDes = nRows - 1
		}

		bestCost := math.Inf(1)
		bestRow, bestSeg := -1, -1
		var bestX float64
		for off := 0; off < nRows; off++ {
			nCand := 2
			if off == 0 {
				nCand = 1
			}
			progress := false
			for ci := 0; ci < nCand; ci++ {
				rIdx := rDes - off
				if ci == 1 {
					rIdx = rDes + off
				}
				if rIdx < 0 || rIdx >= nRows {
					continue
				}
				progress = true
				dy := math.Abs(rows[rIdx].y - desired.Y)
				if dy >= bestCost {
					continue
				}
				for sIdx := range rows[rIdx].segs {
					s := &rows[rIdx].segs[sIdx]
					if s.x1-s.x0 < w {
						continue
					}
					x := desired.X
					if hi := s.x1 - w; x > hi {
						x = hi
					}
					if x < s.x0 {
						x = s.x0
					}
					cost := math.Abs(x-desired.X) + dy
					if cost < bestCost {
						bestCost, bestRow, bestSeg, bestX = cost, rIdx, sIdx, x
					}
				}
			}
			if !progress || (bestRow >= 0 && float64(off)*tech.CellHeight > bestCost) {
				break
			}
		}
		if bestRow < 0 {
			return fmt.Errorf("place: no legal slot for cell %s in %s die %s (outline too small)", c.Name, b.Name, d)
		}
		segs := rows[bestRow].segs
		seg := segs[bestSeg]
		c.Pos = geom.Point{X: bestX, Y: rows[bestRow].y}
		var repl [2]segment
		nRepl := 0
		if bestX-seg.x0 > 1e-9 {
			repl[nRepl] = segment{x0: seg.x0, x1: bestX}
			nRepl++
		}
		if seg.x1-(bestX+w) > 1e-9 {
			repl[nRepl] = segment{x0: bestX + w, x1: seg.x1}
			nRepl++
		}
		switch nRepl {
		case 1:
			segs[bestSeg] = repl[0]
		case 0:
			rows[bestRow].segs = append(segs[:bestSeg], segs[bestSeg+1:]...)
		case 2:
			segs = append(segs, segment{})
			copy(segs[bestSeg+2:], segs[bestSeg+1:])
			segs[bestSeg], segs[bestSeg+1] = repl[0], repl[1]
			rows[bestRow].segs = segs
		}

		disp := math.Abs(bestX-desired.X) + math.Abs(rows[bestRow].y-desired.Y)
		p.legalStats.TotalDisp += disp
		if disp > p.legalStats.MaxDisp {
			p.legalStats.MaxDisp = disp
		}
		if disp > 1e-9 {
			p.legalStats.Moved++
		}
	}
	return nil
}

// refSpreadPass is the pre-PR 8 cell-shifting step: shift1D reading cell
// centers and masters through the Instance structs on every access.
func (p *Placer) refSpreadPass(b *netlist.Block, d netlist.Die, dg *densityGrid) {
	g := dg.grid
	p.refBucketLanes(b, d, g, true)
	for iy := 0; iy < g.NY; iy++ {
		p.refShift1D(b, d, g, dg, iy, true)
	}
	p.refBucketLanes(b, d, g, false)
	for ix := 0; ix < g.NX; ix++ {
		p.refShift1D(b, d, g, dg, ix, false)
	}
}

func (p *Placer) refBucketLanes(b *netlist.Block, d netlist.Die, g *geom.Grid, horiz bool) {
	lanes := g.NY
	if !horiz {
		lanes = g.NX
	}
	if cap(p.laneOff) < lanes+1 {
		p.laneOff = make([]int32, lanes+1)
	}
	off := p.laneOff[:lanes+1]
	clear(off)
	if cap(p.laneOf) < len(b.Cells) {
		p.laneOf = make([]int32, len(b.Cells))
		p.laneCells = make([]int32, len(b.Cells))
	}
	laneOf := p.laneOf[:len(b.Cells)]
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die != d || c.Fixed {
			laneOf[i] = -1
			continue
		}
		ix, iy := g.BinAt(c.Center())
		lane := iy
		if !horiz {
			lane = ix
		}
		laneOf[i] = int32(lane)
		off[lane+1]++
	}
	for k := 0; k < lanes; k++ {
		off[k+1] += off[k]
	}
	cells := p.laneCells[:len(b.Cells)]
	for i, lane := range laneOf {
		if lane < 0 {
			continue
		}
		cells[off[lane]] = int32(i)
		off[lane]++
	}
	for k := lanes; k > 0; k-- {
		off[k] = off[k-1]
	}
	off[0] = 0
}

func (p *Placer) refShift1D(b *netlist.Block, d netlist.Die, g *geom.Grid, dg *densityGrid, lane int, horiz bool) {
	cells := p.laneCells[p.laneOff[lane]:p.laneOff[lane+1]]
	if len(cells) == 0 {
		return
	}
	n := g.NX
	if !horiz {
		n = g.NY
	}
	demand := resetF64(&p.demand, n)
	supply := resetF64(&p.supply, n)

	for _, ci := range cells {
		c := &b.Cells[ci]
		ix, iy := g.BinAt(c.Center())
		if horiz {
			demand[ix] += c.Master.Area()
		} else {
			demand[iy] += c.Master.Area()
		}
	}
	for k := 0; k < n; k++ {
		var idx int
		if horiz {
			idx = g.Index(k, lane)
		} else {
			idx = g.Index(lane, k)
		}
		supply[k] = dg.supply[idx] + 1e-9
	}

	cumD := resetF64(&p.cumD, n+1)
	cumS := resetF64(&p.cumS, n+1)
	for k := 0; k < n; k++ {
		cumD[k+1] = cumD[k] + demand[k]
		cumS[k+1] = cumS[k] + supply[k]
	}
	totD, totS := cumD[n], cumS[n]
	if totD <= 0 {
		return
	}

	lo := g.Region.Lo.X
	binSz, _ := g.BinSize()
	if !horiz {
		lo = g.Region.Lo.Y
		_, binSz = g.BinSize()
	}

	const alpha = 0.55
	out := b.Outline[d]
	for _, i := range cells {
		c := &b.Cells[i]
		ctr := c.Center()
		coord := ctr.X
		if !horiz {
			coord = ctr.Y
		}
		f := (coord - lo) / binSz
		k := int(f)
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		frac := f - float64(k)
		u := (cumD[k] + frac*demand[k]) / totD * totS
		j, jh := 0, n
		for j < jh {
			mid := int(uint(j+jh) >> 1)
			if cumS[mid+1] >= u {
				jh = mid
			} else {
				j = mid + 1
			}
		}
		if j >= n {
			j = n - 1
		}
		var t float64
		if supply[j] > 0 {
			t = (u - cumS[j]) / supply[j]
		}
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		mapped := lo + (float64(j)+t)*binSz
		if horiz {
			c.Pos.X += alpha * (mapped - ctr.X)
		} else {
			c.Pos.Y += alpha * (mapped - ctr.Y)
		}
		c.Pos = clampCell(out, c)
	}
}
