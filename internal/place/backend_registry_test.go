package place

import (
	"errors"
	"strings"
	"testing"

	"fold3d/internal/errs"
)

// TestBackendRegistryDefault pins the registry's committed surface: the
// force backend is registered under the default name, resolves for both
// the empty string and its explicit name, and reports its name.
func TestBackendRegistryDefault(t *testing.T) {
	names := BackendNames()
	if len(names) == 0 || names[0] != DefaultBackend {
		t.Fatalf("BackendNames() = %v, want %q first (registration order)", names, DefaultBackend)
	}
	for _, name := range []string{"", DefaultBackend} {
		b, err := NewBackend(name, DefaultOptions())
		if err != nil {
			t.Fatalf("NewBackend(%q): %v", name, err)
		}
		if b.Name() != DefaultBackend {
			t.Errorf("NewBackend(%q).Name() = %q, want %q", name, b.Name(), DefaultBackend)
		}
		if _, ok := b.(*Placer); !ok {
			t.Errorf("NewBackend(%q) = %T, want *Placer", name, b)
		}
	}
}

// TestBackendRegistryUnknown pins the fail-fast contract: an unknown name
// is rejected with an error matching both ErrBadRequest and ErrBadOptions
// and naming every valid backend.
func TestBackendRegistryUnknown(t *testing.T) {
	_, err := NewBackend("quadratic", DefaultOptions())
	if err == nil {
		t.Fatal("NewBackend(quadratic) succeeded")
	}
	if !errors.Is(err, errs.ErrBadOptions) || !errors.Is(err, errs.ErrBadRequest) {
		t.Errorf("error %v must match ErrBadOptions and ErrBadRequest", err)
	}
	for _, name := range BackendNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name valid backend %q", err, name)
		}
	}
	if err := ValidateBackend("quadratic"); err == nil {
		t.Error("ValidateBackend(quadratic) accepted")
	}
	if err := ValidateBackend(""); err != nil {
		t.Errorf("ValidateBackend(\"\") = %v, want nil (empty means default)", err)
	}
}

// TestBackendNamesIsACopy guards the registry against callers mutating the
// returned slice.
func TestBackendNamesIsACopy(t *testing.T) {
	a := BackendNames()
	a[0] = "clobbered"
	if b := BackendNames(); b[0] != DefaultBackend {
		t.Fatalf("mutating BackendNames() leaked into the registry: %v", b)
	}
}

// TestMustRegisterBackendPanics pins the registration invariants: empty
// names and duplicates are programmer errors.
func TestMustRegisterBackendPanics(t *testing.T) {
	for _, name := range []string{"", DefaultBackend} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustRegisterBackend(%q) did not panic", name)
				}
			}()
			MustRegisterBackend(name, func(opt Options) Backend { return New(opt) })
		}()
	}
}
