package place

import (
	"fmt"
	"strings"

	"fold3d/internal/errs"
	"fold3d/internal/netlist"
)

// Backend is one placement engine behind the flow's place stage. The flow
// resolves a backend by name through the registry (NewBackend), drives the
// whole global placement through Place, and re-legalizes incrementally
// through LegalizeAll after CTS, repeater insertion and TSV planning edit
// the netlist. Reinit re-arms a pooled backend for its next block exactly
// like a fresh construction would (see Placer.Reinit) — the flow's arena
// pool relies on reinitialized and new backends being interchangeable.
//
// Every backend must be deterministic: byte-identical placements for
// identical (block, Options) inputs regardless of worker count, fleet
// topology or pool temperature. The fingerprint-equivalence tests pin this
// per backend.
type Backend interface {
	// Name returns the registry name the backend was registered under.
	Name() string
	// Place globally places and legalizes every movable cell of b.
	Place(b *netlist.Block) error
	// LegalizeAll re-legalizes from current positions without global
	// placement.
	LegalizeAll(b *netlist.Block) error
	// Reinit re-arms the backend for a new block with fresh options,
	// keeping scratch capacity.
	Reinit(opt Options)
}

// DefaultBackend names the force-directed backend — the paper's own placer
// and the default wherever a placer name is absent. Its artifact cache keys
// deliberately carry no backend material, so pre-registry fingerprints stay
// valid (see the flow's place stage key).
const DefaultBackend = "force"

// backendEntry pairs a registered name with its factory. The registry is an
// ordered slice, not a map: BackendNames feeds error messages, -list output
// and reports, all of which must be deterministic.
type backendEntry struct {
	name    string
	factory func(Options) Backend
}

var backends []backendEntry

// MustRegisterBackend registers a placement backend factory under name.
// Call it from an init function; registering a duplicate or empty name
// panics (a programmer error caught at package-load time, never at
// request time).
func MustRegisterBackend(name string, factory func(Options) Backend) {
	if name == "" || factory == nil {
		panic("place: MustRegisterBackend: empty name or nil factory")
	}
	for _, e := range backends {
		if e.name == name {
			panic("place: MustRegisterBackend: duplicate backend " + name)
		}
	}
	backends = append(backends, backendEntry{name: name, factory: factory})
}

// BackendNames returns the registered backend names in registration order
// (the default force backend first). The slice is a copy.
func BackendNames() []string {
	out := make([]string, len(backends))
	for i, e := range backends {
		out[i] = e.name
	}
	return out
}

// NewBackend constructs the named backend with the given options. An empty
// name selects DefaultBackend. An unknown name fails fast with an error
// wrapping errs.ErrBadRequest and errs.ErrBadOptions that lists the valid
// backends, so transports map it to a client error (HTTP 400, CLI exit 2)
// without string matching.
func NewBackend(name string, opt Options) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	for _, e := range backends {
		if e.name == name {
			return e.factory(opt), nil
		}
	}
	return nil, fmt.Errorf("place: %w: %w: unknown placement backend %q (valid: %s)",
		errs.ErrBadRequest, errs.ErrBadOptions, name, strings.Join(BackendNames(), ", "))
}

// ValidateBackend checks that name is registered (empty selects the
// default) without constructing anything, for request validation layers.
// The failure is the same fail-fast error NewBackend returns.
func ValidateBackend(name string) error {
	if name == "" {
		return nil
	}
	for _, e := range backends {
		if e.name == name {
			return nil
		}
	}
	_, err := NewBackend(name, Options{})
	return err
}

// Name returns the force-directed backend's registry name. The iterative
// wirelength/spreading Placer is the paper's own placement algorithm and
// the registry default.
func (p *Placer) Name() string { return DefaultBackend }

func init() {
	MustRegisterBackend(DefaultBackend, func(opt Options) Backend { return New(opt) })
}
