package place

import (
	"fmt"
	"math"
	"sort"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// TSVPlanOptions configures intra-block TSV planning for a folded block
// under face-to-back bonding.
type TSVPlanOptions struct {
	// TSV is the physical via model (tech.DefaultTSV for the paper's 5µm /
	// 10µm-pitch via).
	TSV tech.TSV
	// ShrinkExp is the exponent gamma applied to the netlist scale factor to
	// shrink the drawn TSV geometry: drawnDim = physicalDim / scale^gamma.
	// gamma = 0.28 keeps the TSV-area fraction of the block realistic even
	// though the modeled 3D-cut count scales with the Rent exponent rather
	// than linearly (DESIGN.md §6): at the paper-scale sweep maximum
	// (~100 drawn TSVs on the CCX) the pads consume ~13% of the block, the
	// paper's reported overhead.
	ShrinkExp float64
	// Scale is the netlist scale factor (tech.ScaleModel.Scale).
	Scale float64
}

// DefaultTSVPlanOptions returns the paper's TSV with the standard shrink.
func DefaultTSVPlanOptions(scale float64) TSVPlanOptions {
	return TSVPlanOptions{TSV: tech.DefaultTSV(), ShrinkExp: 0.28, Scale: scale}
}

// DrawnDiameter returns the TSV pad edge in drawn µm.
func (o TSVPlanOptions) DrawnDiameter() float64 {
	return o.TSV.Diameter / math.Pow(o.Scale, o.ShrinkExp)
}

// DrawnPitch returns the minimum TSV center spacing in drawn µm.
func (o TSVPlanOptions) DrawnPitch() float64 {
	return o.TSV.Pitch / math.Pow(o.Scale, o.ShrinkExp)
}

// PlanTSVs assigns one TSV site to every die-crossing net of the folded
// block b. TSVs sit on a pitch grid, never over macros (unlike F2F vias,
// which is the paper's Figure 6 contrast), and block placement on both dies.
// Nets get their Vias point and Crossings count set; b.TSVPads and b.NumTSV
// are filled. Call after 3D global placement, before the final spread and
// legalization.
func PlanTSVs(b *netlist.Block, opt TSVPlanOptions) error {
	grid, err := NewTSVSiteGrid(b, opt)
	if err != nil {
		return err
	}
	size := grid.PadSize()

	// Assign nets to sites, longest-span nets first so the critical ones get
	// their ideal crossing points.
	type cand struct {
		net  int
		want geom.Point
		span float64
	}
	var cands []cand
	var pins []geom.Point
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Kind != netlist.Signal || !b.NetIs3D(n) {
			continue
		}
		want := crossingPoint(b, n)
		pins = b.AppendNetPins(pins[:0], n)
		cands = append(cands, cand{net: i, want: want, span: geom.HPWL(pins)})
	}
	sort.Slice(cands, func(a, c int) bool { return cands[a].span > cands[c].span })

	b.TSVPads = b.TSVPads[:0]
	b.NumTSV = 0
	for _, cd := range cands {
		idx, found := grid.NearestFree(cd.want)
		if !found {
			return fmt.Errorf("place: block %s ran out of TSV sites (%d nets, %d sites)", b.Name, len(cands), grid.Sites())
		}
		grid.Claim(idx)
		p := grid.Pos(idx)
		n := &b.Nets[cd.net]
		n.Vias = []geom.Point{p}
		n.Crossings = 1
		b.TSVPads = append(b.TSVPads, geom.RectWH(p.X-size/2, p.Y-size/2, size, size))
		b.NumTSV++
	}
	return nil
}

// crossingPoint returns the natural die-crossing location of a 3D net: the
// midpoint between the centroid of its die-0 pins and its die-1 pins.
func crossingPoint(b *netlist.Block, n *netlist.Net) geom.Point {
	var c [2]geom.Point
	var k [2]float64
	add := func(ref netlist.PinRef) {
		d := b.PinDie(ref)
		p := b.PinPos(ref)
		c[d].X += p.X
		c[d].Y += p.Y
		k[d]++
	}
	add(n.Driver)
	for _, s := range n.Sinks {
		add(s)
	}
	for d := 0; d < 2; d++ {
		if k[d] > 0 {
			c[d] = c[d].Scale(1 / k[d])
		}
	}
	if k[0] == 0 {
		return c[1]
	}
	if k[1] == 0 {
		return c[0]
	}
	return geom.Point{X: (c[0].X + c[1].X) / 2, Y: (c[0].Y + c[1].Y) / 2}
}

// nearestFreeSite spirals outward on the site grid from the bin containing
// want until it finds a free site; returns its index.
func nearestFreeSite(want geom.Point, region geom.Rect, pitch float64, nx, ny int, free []bool) (int, bool) {
	cx := int((want.X - region.Lo.X) / pitch)
	cy := int((want.Y - region.Lo.Y) / pitch)
	if cx < 0 {
		cx = 0
	}
	if cx >= nx {
		cx = nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= ny {
		cy = ny - 1
	}
	// Walk each Chebyshev ring's perimeter directly — the top and bottom
	// rows in full, interior rows at only their two edge cells — visiting
	// exactly the cells the old full-square scan kept (its max(|dx|,|dy|)==r
	// filter) in the same (dy, dx) lexicographic order, so the first free
	// site found is unchanged while the per-ring work drops from O(r^2) to
	// O(r).
	maxR := nx + ny
	probe := func(dx, dy int) (int, bool) {
		x, y := cx+dx, cy+dy
		if x < 0 || x >= nx || y < 0 || y >= ny {
			return 0, false
		}
		idx := y*nx + x
		return idx, free[idx]
	}
	for r := 0; r <= maxR; r++ {
		for dx := -r; dx <= r; dx++ {
			if idx, ok := probe(dx, -r); ok {
				return idx, true
			}
		}
		for dy := -r + 1; dy < r; dy++ {
			if idx, ok := probe(-r, dy); ok {
				return idx, true
			}
			if idx, ok := probe(r, dy); ok {
				return idx, true
			}
		}
		if r > 0 {
			for dx := -r; dx <= r; dx++ {
				if idx, ok := probe(dx, r); ok {
					return idx, true
				}
			}
		}
	}
	return 0, false
}
