package place

import (
	"fmt"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
)

// TSVSiteGrid is the legal-TSV-site index of a folded block: the pitch grid
// over the region both die outlines share, with every site whose pad rect
// would overlap a macro cleared up front. PlanTSVs allocates signal-net
// crossings from it, and the thermal-via stage (flow) draws dummy thermal
// TSVs from whatever sites remain — both through the same nearest-free
// spiral so site choice stays deterministic.
type TSVSiteGrid struct {
	region geom.Rect
	pitch  float64
	size   float64
	nx, ny int
	free   []bool
	pos    []geom.Point
}

// NewTSVSiteGrid builds the site index for folded block b. It fails on 2D
// blocks, disjoint die outlines, or outlines smaller than one TSV pitch —
// the same preconditions PlanTSVs has always enforced.
func NewTSVSiteGrid(b *netlist.Block, opt TSVPlanOptions) (*TSVSiteGrid, error) {
	if !b.Is3D {
		return nil, fmt.Errorf("place: TSV site grid on 2D block %s", b.Name)
	}
	pitch := opt.DrawnPitch()
	size := opt.DrawnDiameter()
	if pitch <= 0 || size <= 0 {
		return nil, fmt.Errorf("place: non-positive drawn TSV geometry (pitch %.3f size %.3f)", pitch, size)
	}
	// The usable region must exist on both dies.
	region, ok := b.Outline[0].Intersect(b.Outline[1])
	if !ok {
		return nil, fmt.Errorf("place: folded block %s has disjoint die outlines", b.Name)
	}
	nx := int(region.W() / pitch)
	ny := int(region.H() / pitch)
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("place: block %s outline smaller than one TSV pitch", b.Name)
	}

	g := &TSVSiteGrid{
		region: region,
		pitch:  pitch,
		size:   size,
		nx:     nx,
		ny:     ny,
		free:   make([]bool, nx*ny),
		pos:    make([]geom.Point, nx*ny),
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			idx := iy*nx + ix
			g.free[idx] = true
			g.pos[idx] = geom.Point{
				X: region.Lo.X + (float64(ix)+0.5)*pitch,
				Y: region.Lo.Y + (float64(iy)+0.5)*pitch,
			}
		}
	}
	// Instead of testing every site against every macro (the old
	// O(sites x macros) scan), start with every site free and let each macro
	// clear the sites it can reach: the pad of site (ix,iy) spans at most one
	// pitch plus the pad size, so only sites in a macro-aligned index window
	// (padded by one cell for float safety) need the exact Overlaps test.
	// Every cleared site fails the very same m.Overlaps(pad) the full scan
	// ran, so the free set comes out identical.
	for i := range b.Macros {
		m := b.Macros[i].Rect()
		ix0 := int((m.Lo.X-size/2-region.Lo.X)/pitch) - 1
		ix1 := int((m.Hi.X+size/2-region.Lo.X)/pitch) + 1
		iy0 := int((m.Lo.Y-size/2-region.Lo.Y)/pitch) - 1
		iy1 := int((m.Hi.Y+size/2-region.Lo.Y)/pitch) + 1
		ix0, iy0 = max(ix0, 0), max(iy0, 0)
		ix1, iy1 = min(ix1, nx-1), min(iy1, ny-1)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				idx := iy*nx + ix
				if !g.free[idx] {
					continue
				}
				ctr := g.pos[idx]
				pad := geom.RectWH(ctr.X-size/2, ctr.Y-size/2, size, size)
				if m.Overlaps(pad) {
					g.free[idx] = false
				}
			}
		}
	}
	return g, nil
}

// Sites returns the total number of grid sites (free or not).
func (g *TSVSiteGrid) Sites() int { return g.nx * g.ny }

// PadSize returns the drawn TSV pad edge in µm.
func (g *TSVSiteGrid) PadSize() float64 { return g.size }

// Pos returns the center of site idx.
func (g *TSVSiteGrid) Pos(idx int) geom.Point { return g.pos[idx] }

// PadRect returns the pad rectangle of site idx.
func (g *TSVSiteGrid) PadRect(idx int) geom.Rect {
	p := g.pos[idx]
	return geom.RectWH(p.X-g.size/2, p.Y-g.size/2, g.size, g.size)
}

// Claim marks site idx as occupied.
func (g *TSVSiteGrid) Claim(idx int) { g.free[idx] = false }

// ClaimOverlapping marks every site whose pad rect overlaps any of the given
// rectangles as occupied — used to reload an existing TSV population (e.g.
// b.TSVPads from signal planning) into a fresh grid before allocating
// thermal vias.
func (g *TSVSiteGrid) ClaimOverlapping(pads []geom.Rect) {
	for _, pad := range pads {
		ix0 := int((pad.Lo.X-g.size/2-g.region.Lo.X)/g.pitch) - 1
		ix1 := int((pad.Hi.X+g.size/2-g.region.Lo.X)/g.pitch) + 1
		iy0 := int((pad.Lo.Y-g.size/2-g.region.Lo.Y)/g.pitch) - 1
		iy1 := int((pad.Hi.Y+g.size/2-g.region.Lo.Y)/g.pitch) + 1
		ix0, iy0 = max(ix0, 0), max(iy0, 0)
		ix1, iy1 = min(ix1, g.nx-1), min(iy1, g.ny-1)
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				idx := iy*g.nx + ix
				if g.free[idx] && g.PadRect(idx).Overlaps(pad) {
					g.free[idx] = false
				}
			}
		}
	}
}

// NearestFree returns the free site closest to want (Chebyshev ring order)
// without claiming it, or false when the grid is exhausted.
func (g *TSVSiteGrid) NearestFree(want geom.Point) (int, bool) {
	return nearestFreeSite(want, g.region, g.pitch, g.nx, g.ny, g.free)
}
