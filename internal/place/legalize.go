package place

import (
	"fmt"
	"math"
	"slices"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// LegalStats reports legalization quality; the macro-mode ablation compares
// these between MacroHoles and MacroDemand (demand-reduction leaves cells on
// top of macros that legalization must evict a long way — halos).
type LegalStats struct {
	// TotalDisp is the summed cell displacement in µm.
	TotalDisp float64
	// MaxDisp is the largest single-cell displacement in µm.
	MaxDisp float64
	// Moved is the number of cells legalization had to relocate.
	Moved int
}

// LastLegal exposes the statistics of the most recent legalization run
// (summed over dies).
func (p *Placer) LastLegal() LegalStats { return p.legalStats }

// segment is a free interval of one placement row. Placing a cell splits
// the interval, so no row space is ever stranded behind a cursor.
type segment struct {
	x0, x1 float64
}

type row struct {
	y    float64
	segs []segment
}

// rowScratch holds the buffers buildRows fills: row headers, one shared
// segment arena (each row's segs is a capacity-clipped window into it, so a
// row that later splice-grows reallocates privately), the blockage list and
// the subtract ping-pong buffers. Reused across legalization passes.
type rowScratch struct {
	rows       []row
	arena      []segment
	blockages  []geom.Rect
	free, next []segment
	rowOff     []int32 // CSR: candidate blockages per row
	rowBlk     []int32
}

// grownI32 resizes *s to n zeroed elements, reusing capacity.
func grownI32(s *[]int32, n int) []int32 {
	if cap(*s) < n {
		*s = make([]int32, n)
		return *s
	}
	v := (*s)[:n]
	clear(v)
	return v
}

// buildRows constructs the placement rows of die d with macro, fixed-cell
// and TSV-pad blockages cut out, reusing sc's allocations.
func buildRows(b *netlist.Block, d netlist.Die, sc *rowScratch) ([]row, error) {
	out := b.Outline[d]
	nRows := int(out.H() / tech.CellHeight)
	if nRows <= 0 {
		return nil, fmt.Errorf("place: outline of %s die %s shorter than a cell row", b.Name, d)
	}
	blockages := sc.blockages[:0]
	for i := range b.Macros {
		if b.Macros[i].Die == d {
			blockages = append(blockages, b.Macros[i].Rect())
		}
	}
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die == d && c.Fixed {
			blockages = append(blockages, c.Rect())
		}
	}
	blockages = append(blockages, b.TSVPads...)
	sc.blockages = blockages

	// Bucket blockages by the rows they can touch (CSR over a conservative
	// ±1-row span) so each row scans only its own candidates instead of the
	// whole list; the exact Overlaps test below still decides membership,
	// so the computed rows are identical to a full scan.
	off := grownI32(&sc.rowOff, nRows+1)
	spanOf := func(blk geom.Rect) (int, int) {
		r0 := int((blk.Lo.Y-out.Lo.Y)/tech.CellHeight) - 1
		r1 := int((blk.Hi.Y-out.Lo.Y)/tech.CellHeight) + 1
		if r0 < 0 {
			r0 = 0
		}
		if r1 >= nRows {
			r1 = nRows - 1
		}
		return r0, r1
	}
	for _, blk := range blockages {
		r0, r1 := spanOf(blk)
		for r := r0; r <= r1; r++ {
			off[r+1]++
		}
	}
	for r := 0; r < nRows; r++ {
		off[r+1] += off[r]
	}
	rowBlk := sc.rowBlk
	if cap(rowBlk) < int(off[nRows]) {
		rowBlk = make([]int32, off[nRows])
		sc.rowBlk = rowBlk
	} else {
		rowBlk = rowBlk[:off[nRows]]
	}
	for bi, blk := range blockages {
		r0, r1 := spanOf(blk)
		for r := r0; r <= r1; r++ {
			rowBlk[off[r]] = int32(bi)
			off[r]++
		}
	}
	for r := nRows; r > 0; r-- {
		off[r] = off[r-1]
	}
	off[0] = 0

	rows := sc.rows[:0]
	arena := sc.arena[:0]
	free, next := sc.free, sc.next
	for r := 0; r < nRows; r++ {
		y := out.Lo.Y + float64(r)*tech.CellHeight
		rowRect := geom.NewRect(out.Lo.X, y, out.Hi.X, y+tech.CellHeight)
		free = append(free[:0], segment{x0: out.Lo.X, x1: out.Hi.X})
		for _, bi := range rowBlk[off[r]:off[r+1]] {
			blk := blockages[bi]
			if !blk.Overlaps(rowRect) {
				continue
			}
			next = next[:0]
			for _, s := range free {
				// Subtract [blk.Lo.X, blk.Hi.X] from [s.x0, s.x1].
				if blk.Hi.X <= s.x0 || blk.Lo.X >= s.x1 {
					next = append(next, s)
					continue
				}
				if blk.Lo.X > s.x0 {
					next = append(next, segment{x0: s.x0, x1: blk.Lo.X})
				}
				if blk.Hi.X < s.x1 {
					next = append(next, segment{x0: blk.Hi.X, x1: s.x1})
				}
			}
			free, next = next, free
		}
		start := len(arena)
		arena = append(arena, free...)
		rows = append(rows, row{y: y, segs: arena[start:len(arena):len(arena)]})
	}
	sc.rows, sc.arena, sc.free, sc.next = rows, arena, free, next
	return rows, nil
}

// FreeRowArea returns the usable standard-cell row area (µm²) of die d:
// the summed width of free row segments wide enough to host a cell,
// excluding macro, fixed-cell and TSV-pad blockages.
func FreeRowArea(b *netlist.Block, d netlist.Die) (float64, error) {
	var sc rowScratch
	rows, err := buildRows(b, d, &sc)
	if err != nil {
		return 0, err
	}
	const minSeg = 2.0 // slivers narrower than a small cell are wasted
	var area float64
	for _, r := range rows {
		for _, s := range r.segs {
			if w := s.x1 - s.x0; w >= minSeg {
				area += w * tech.CellHeight
			}
		}
	}
	return area, nil
}

// legalize snaps every movable cell of die d onto non-overlapping row sites,
// avoiding macros and fixed cells, with minimal displacement (greedy tetris:
// cells are processed in x order and each takes the cheapest feasible slot).
func (p *Placer) legalize(b *netlist.Block, d netlist.Die) error {
	out := b.Outline[d]
	rows, err := buildRows(b, d, &p.rowsSc)
	if err != nil {
		return err
	}
	nRows := len(rows)

	// Collect movable cells of this die, sorted by desired x then y
	// (index as final tiebreak, so the order is a total one).
	ids := p.ids[:0]
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die == d && !c.Fixed {
			ids = append(ids, int32(i))
		}
	}
	slices.SortFunc(ids, func(a, c int32) int {
		ca, cc := &b.Cells[a], &b.Cells[c]
		switch {
		case ca.Pos.X < cc.Pos.X:
			return -1
		case ca.Pos.X > cc.Pos.X:
			return 1
		case ca.Pos.Y < cc.Pos.Y:
			return -1
		case ca.Pos.Y > cc.Pos.Y:
			return 1
		}
		return int(a - c)
	})
	p.ids = ids

	for _, i := range ids {
		c := &b.Cells[i]
		w := c.Master.Width
		desired := c.Pos
		rDes := int((desired.Y - out.Lo.Y) / tech.CellHeight)
		if rDes < 0 {
			rDes = 0
		}
		if rDes >= nRows {
			rDes = nRows - 1
		}

		bestCost := math.Inf(1)
		bestRow, bestSeg := -1, -1
		var bestX float64
		// Search rows outward from the desired row; stop once row distance
		// alone exceeds the best cost found.
		for off := 0; off < nRows; off++ {
			nCand := 2
			if off == 0 {
				nCand = 1
			}
			progress := false
			for ci := 0; ci < nCand; ci++ {
				rIdx := rDes - off
				if ci == 1 {
					rIdx = rDes + off
				}
				if rIdx < 0 || rIdx >= nRows {
					continue
				}
				progress = true
				dy := math.Abs(rows[rIdx].y - desired.Y)
				if dy >= bestCost {
					continue
				}
				// A row's segments are disjoint and sorted by x0 (buildRows
				// subtracts blockages left to right; the placement splice
				// below preserves order), so instead of scanning them all,
				// binary-search the segment nearest desired.X and walk
				// outward two-pointer style. Within one row cost = dx + dy,
				// so equal cost means equal dx; taking the left side on tied
				// bounds keeps the ascending-sIdx winner the full linear
				// scan would have picked, making the result bit-identical.
				segs := rows[rIdx].segs
				ns := len(segs)
				slo, shi := 0, ns
				for slo < shi {
					mid := int(uint(slo+shi) >> 1)
					if segs[mid].x0 > desired.X {
						shi = mid
					} else {
						slo = mid + 1
					}
				}
				li, ri := slo-1, slo
				for li >= 0 || ri < ns {
					// Monotone lower bounds on this side's next dx: walking
					// left, x1 strictly decreases; walking right, x0
					// strictly increases. Actual dx never beats the bound,
					// so once min(bound)+dy reaches bestCost nothing further
					// out can win and the row is done.
					dl, dr := math.Inf(1), math.Inf(1)
					if li >= 0 {
						if dl = desired.X - segs[li].x1; dl < 0 {
							dl = 0
						}
					}
					if ri < ns {
						dr = segs[ri].x0 - desired.X
					}
					var sIdx int
					if dl <= dr {
						if dl+dy >= bestCost {
							break
						}
						sIdx = li
						li--
					} else {
						if dr+dy >= bestCost {
							break
						}
						sIdx = ri
						ri++
					}
					s := &segs[sIdx]
					if s.x1-s.x0 < w {
						continue
					}
					// x = max(s.x0, min(desired.X, s.x1-w)), branch form.
					x := desired.X
					if hi := s.x1 - w; x > hi {
						x = hi
					}
					if x < s.x0 {
						x = s.x0
					}
					cost := math.Abs(x-desired.X) + dy
					if cost < bestCost {
						bestCost, bestRow, bestSeg, bestX = cost, rIdx, sIdx, x
					}
				}
			}
			if !progress || (bestRow >= 0 && float64(off)*tech.CellHeight > bestCost) {
				break
			}
		}
		if bestRow < 0 {
			return fmt.Errorf("place: no legal slot for cell %s in %s die %s (outline too small)", c.Name, b.Name, d)
		}
		// Split the chosen segment around the placed cell, splicing the
		// replacement pieces in place (no temporary slice).
		segs := rows[bestRow].segs
		seg := segs[bestSeg]
		c.Pos = geom.Point{X: bestX, Y: rows[bestRow].y}
		var repl [2]segment
		nRepl := 0
		if bestX-seg.x0 > 1e-9 {
			repl[nRepl] = segment{x0: seg.x0, x1: bestX}
			nRepl++
		}
		if seg.x1-(bestX+w) > 1e-9 {
			repl[nRepl] = segment{x0: bestX + w, x1: seg.x1}
			nRepl++
		}
		switch nRepl {
		case 1:
			segs[bestSeg] = repl[0]
		case 0:
			rows[bestRow].segs = append(segs[:bestSeg], segs[bestSeg+1:]...)
		case 2:
			segs = append(segs, segment{})
			copy(segs[bestSeg+2:], segs[bestSeg+1:])
			segs[bestSeg], segs[bestSeg+1] = repl[0], repl[1]
			rows[bestRow].segs = segs
		}

		disp := math.Abs(bestX-desired.X) + math.Abs(rows[bestRow].y-desired.Y)
		p.legalStats.TotalDisp += disp
		if disp > p.legalStats.MaxDisp {
			p.legalStats.MaxDisp = disp
		}
		if disp > 1e-9 {
			p.legalStats.Moved++
		}
	}
	return nil
}
