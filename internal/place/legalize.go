package place

import (
	"fmt"
	"math"
	"sort"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

// LegalStats reports legalization quality; the macro-mode ablation compares
// these between MacroHoles and MacroDemand (demand-reduction leaves cells on
// top of macros that legalization must evict a long way — halos).
type LegalStats struct {
	// TotalDisp is the summed cell displacement in µm.
	TotalDisp float64
	// MaxDisp is the largest single-cell displacement in µm.
	MaxDisp float64
	// Moved is the number of cells legalization had to relocate.
	Moved int
}

// LastLegal exposes the statistics of the most recent legalization run
// (summed over dies).
func (p *Placer) LastLegal() LegalStats { return p.legalStats }

// segment is a free interval of one placement row. Placing a cell splits
// the interval, so no row space is ever stranded behind a cursor.
type segment struct {
	x0, x1 float64
}

type row struct {
	y    float64
	segs []segment
}

// buildRows constructs the placement rows of die d with macro, fixed-cell
// and TSV-pad blockages cut out.
func buildRows(b *netlist.Block, d netlist.Die) ([]row, error) {
	out := b.Outline[d]
	nRows := int(out.H() / tech.CellHeight)
	if nRows <= 0 {
		return nil, fmt.Errorf("place: outline of %s die %s shorter than a cell row", b.Name, d)
	}
	var blockages []geom.Rect
	for i := range b.Macros {
		if b.Macros[i].Die == d {
			blockages = append(blockages, b.Macros[i].Rect())
		}
	}
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die == d && c.Fixed {
			blockages = append(blockages, c.Rect())
		}
	}
	blockages = append(blockages, b.TSVPads...)
	rows := make([]row, nRows)
	for r := 0; r < nRows; r++ {
		y := out.Lo.Y + float64(r)*tech.CellHeight
		rowRect := geom.NewRect(out.Lo.X, y, out.Hi.X, y+tech.CellHeight)
		free := []segment{{x0: out.Lo.X, x1: out.Hi.X}}
		for _, blk := range blockages {
			if !blk.Overlaps(rowRect) {
				continue
			}
			var next []segment
			for _, s := range free {
				// Subtract [blk.Lo.X, blk.Hi.X] from [s.x0, s.x1].
				if blk.Hi.X <= s.x0 || blk.Lo.X >= s.x1 {
					next = append(next, s)
					continue
				}
				if blk.Lo.X > s.x0 {
					next = append(next, segment{x0: s.x0, x1: blk.Lo.X})
				}
				if blk.Hi.X < s.x1 {
					next = append(next, segment{x0: blk.Hi.X, x1: s.x1})
				}
			}
			free = next
		}
		rows[r] = row{y: y, segs: free}
	}
	return rows, nil
}

// FreeRowArea returns the usable standard-cell row area (µm²) of die d:
// the summed width of free row segments wide enough to host a cell,
// excluding macro, fixed-cell and TSV-pad blockages.
func FreeRowArea(b *netlist.Block, d netlist.Die) (float64, error) {
	rows, err := buildRows(b, d)
	if err != nil {
		return 0, err
	}
	const minSeg = 2.0 // slivers narrower than a small cell are wasted
	var area float64
	for _, r := range rows {
		for _, s := range r.segs {
			if w := s.x1 - s.x0; w >= minSeg {
				area += w * tech.CellHeight
			}
		}
	}
	return area, nil
}

// legalize snaps every movable cell of die d onto non-overlapping row sites,
// avoiding macros and fixed cells, with minimal displacement (greedy tetris:
// cells are processed in x order and each takes the cheapest feasible slot).
func (p *Placer) legalize(b *netlist.Block, d netlist.Die) error {
	out := b.Outline[d]
	rows, err := buildRows(b, d)
	if err != nil {
		return err
	}
	nRows := len(rows)

	// Collect movable cells of this die, sorted by desired x then y.
	var ids []int
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die == d && !c.Fixed {
			ids = append(ids, i)
		}
	}
	sort.Slice(ids, func(a, c int) bool {
		ca, cc := &b.Cells[ids[a]], &b.Cells[ids[c]]
		if ca.Pos.X < cc.Pos.X {
			return true
		}
		if ca.Pos.X > cc.Pos.X {
			return false
		}
		return ca.Pos.Y < cc.Pos.Y
	})

	for _, i := range ids {
		c := &b.Cells[i]
		w := c.Master.Width
		desired := c.Pos
		rDes := int((desired.Y - out.Lo.Y) / tech.CellHeight)
		if rDes < 0 {
			rDes = 0
		}
		if rDes >= nRows {
			rDes = nRows - 1
		}

		bestCost := math.Inf(1)
		bestRow, bestSeg := -1, -1
		var bestX float64
		// Search rows outward from the desired row; stop once row distance
		// alone exceeds the best cost found.
		for off := 0; off < nRows; off++ {
			cand := []int{rDes - off, rDes + off}
			if off == 0 {
				cand = cand[:1]
			}
			progress := false
			for _, rIdx := range cand {
				if rIdx < 0 || rIdx >= nRows {
					continue
				}
				progress = true
				dy := math.Abs(rows[rIdx].y - desired.Y)
				if dy >= bestCost {
					continue
				}
				for sIdx := range rows[rIdx].segs {
					s := &rows[rIdx].segs[sIdx]
					if s.x1-s.x0 < w {
						continue
					}
					x := math.Max(s.x0, math.Min(desired.X, s.x1-w))
					cost := math.Abs(x-desired.X) + dy
					if cost < bestCost {
						bestCost, bestRow, bestSeg, bestX = cost, rIdx, sIdx, x
					}
				}
			}
			if !progress || (bestRow >= 0 && float64(off)*tech.CellHeight > bestCost) {
				break
			}
		}
		if bestRow < 0 {
			return fmt.Errorf("place: no legal slot for cell %s in %s die %s (outline too small)", c.Name, b.Name, d)
		}
		// Split the chosen segment around the placed cell.
		segs := rows[bestRow].segs
		seg := segs[bestSeg]
		c.Pos = geom.Point{X: bestX, Y: rows[bestRow].y}
		var repl []segment
		if bestX-seg.x0 > 1e-9 {
			repl = append(repl, segment{x0: seg.x0, x1: bestX})
		}
		if seg.x1-(bestX+w) > 1e-9 {
			repl = append(repl, segment{x0: bestX + w, x1: seg.x1})
		}
		rows[bestRow].segs = append(segs[:bestSeg], append(repl, segs[bestSeg+1:]...)...)

		disp := math.Abs(bestX-desired.X) + math.Abs(rows[bestRow].y-desired.Y)
		p.legalStats.TotalDisp += disp
		if disp > p.legalStats.MaxDisp {
			p.legalStats.MaxDisp = disp
		}
		if disp > 1e-9 {
			p.legalStats.Moved++
		}
	}
	return nil
}
