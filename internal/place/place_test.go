package place

import (
	"fmt"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
	"fold3d/internal/tech"
)

// randomBlock builds a placeable block with n cells, chained nets, and
// optionally m macros pre-placed in the top half.
func randomBlock(t *testing.T, n, m int, seed uint64) *netlist.Block {
	t.Helper()
	lib := tech.NewLibrary()
	r := rng.New(seed)
	b := netlist.NewBlock("rb", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 60, 60)
	for i := 0; i < n; i++ {
		fam := tech.NAND2
		if i%7 == 0 {
			fam = tech.DFF
		}
		b.AddCell(netlist.Instance{
			Name:   fmt.Sprintf("c%d", i),
			Master: lib.MustCell(fam, 2, tech.RVT),
		})
	}
	mm := lib.MacroKB
	mm.Width, mm.Height = 12, 8
	for k := 0; k < m; k++ {
		b.AddMacro(netlist.MacroInst{
			Name:  fmt.Sprintf("m%d", k),
			Model: mm,
			Pos:   geom.Point{X: 2 + float64(k)*14, Y: 48},
			Fixed: true,
		})
	}
	// Random 2-3 pin nets.
	for i := 0; i < n; i++ {
		k := 1 + r.Intn(2)
		var sinks []netlist.PinRef
		for s := 0; s < k; s++ {
			j := r.Intn(n)
			if j == i {
				continue
			}
			sinks = append(sinks, netlist.PinRef{Kind: netlist.KindCell, Idx: int32(j)})
		}
		if len(sinks) == 0 {
			continue
		}
		b.AddNet(netlist.Net{
			Name:   fmt.Sprintf("n%d", i),
			Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: int32(i)},
			Sinks:  sinks,
		})
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

// checkLegal verifies row alignment, outline containment and
// non-overlapping placements on a die.
func checkLegal(t *testing.T, b *netlist.Block, die netlist.Die) {
	t.Helper()
	out := b.Outline[die]
	type placed struct{ r geom.Rect }
	var rects []geom.Rect
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Die != die {
			continue
		}
		r := c.Rect()
		if !out.ContainsRect(r) {
			t.Errorf("cell %s outside outline: %v vs %v", c.Name, r, out)
		}
		// Row alignment.
		rowOff := (c.Pos.Y - out.Lo.Y) / tech.CellHeight
		if diff := rowOff - float64(int(rowOff+0.5)); diff > 1e-6 || diff < -1e-6 {
			t.Errorf("cell %s not row-aligned: y=%v", c.Name, c.Pos.Y)
		}
		for i := range b.Macros {
			if b.Macros[i].Die == die && b.Macros[i].Rect().Overlaps(r) {
				t.Errorf("cell %s overlaps macro %s", c.Name, b.Macros[i].Name)
			}
		}
		for _, pad := range b.TSVPads {
			if pad.Overlaps(r) {
				t.Errorf("cell %s overlaps TSV pad %v", c.Name, pad)
			}
		}
		rects = append(rects, r)
	}
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			// Shrink by an epsilon: row boundaries land on n*CellHeight and
			// accumulate last-ulp noise that is not a real overlap.
			if rects[i].Expand(-1e-6).Overlaps(rects[j].Expand(-1e-6)) {
				t.Fatalf("overlapping cells: %v and %v", rects[i], rects[j])
			}
		}
	}
}

func TestPlaceLegalizes(t *testing.T) {
	b := randomBlock(t, 150, 0, 1)
	p := New(DefaultOptions())
	if err := p.Place(b); err != nil {
		t.Fatal(err)
	}
	checkLegal(t, b, netlist.DieBottom)
}

func TestPlaceImprovesWirelength(t *testing.T) {
	b := randomBlock(t, 200, 0, 2)
	// Random seed positions, measure, then place.
	r := rng.New(99)
	for i := range b.Cells {
		b.Cells[i].Pos = geom.Point{X: r.Range(0, 55), Y: r.Range(0, 55)}
	}
	before := HPWL(b)
	p := New(DefaultOptions())
	if err := p.Place(b); err != nil {
		t.Fatal(err)
	}
	after := HPWL(b)
	if after >= before {
		t.Errorf("placement did not improve HPWL: %v -> %v", before, after)
	}
}

func TestPlaceAvoidsMacros(t *testing.T) {
	b := randomBlock(t, 150, 4, 3)
	p := New(DefaultOptions())
	if err := p.Place(b); err != nil {
		t.Fatal(err)
	}
	checkLegal(t, b, netlist.DieBottom)
}

func TestPlace3D(t *testing.T) {
	b := randomBlock(t, 150, 0, 4)
	b.Is3D = true
	b.Outline[1] = b.Outline[0]
	for i := range b.Cells {
		if i%2 == 0 {
			b.Cells[i].Die = netlist.DieTop
		}
	}
	p := New(DefaultOptions())
	if err := p.Place(b); err != nil {
		t.Fatal(err)
	}
	checkLegal(t, b, netlist.DieBottom)
	checkLegal(t, b, netlist.DieTop)
}

func TestPlaceErrorsOnEmptyOutline(t *testing.T) {
	b := randomBlock(t, 10, 0, 5)
	b.Outline[0] = geom.Rect{}
	p := New(DefaultOptions())
	if err := p.Place(b); err == nil {
		t.Error("expected error for empty outline")
	}
}

func TestLegalizeAllAfterInsertion(t *testing.T) {
	b := randomBlock(t, 120, 0, 6)
	lib := tech.NewLibrary()
	p := New(DefaultOptions())
	if err := p.Place(b); err != nil {
		t.Fatal(err)
	}
	// Drop new cells at already-occupied spots.
	for k := 0; k < 20; k++ {
		b.AddCell(netlist.Instance{
			Name:   fmt.Sprintf("new%d", k),
			Master: lib.MustCell(tech.BUF, 8, tech.RVT),
			Pos:    geom.Point{X: 30, Y: 30},
		})
	}
	if err := p.LegalizeAll(b); err != nil {
		t.Fatal(err)
	}
	checkLegal(t, b, netlist.DieBottom)
}

func TestFreeRowAreaExcludesMacros(t *testing.T) {
	b := randomBlock(t, 10, 0, 7)
	full, err := FreeRowArea(b, netlist.DieBottom)
	if err != nil {
		t.Fatal(err)
	}
	lib := tech.NewLibrary()
	mm := lib.MacroKB
	mm.Width, mm.Height = 20, 20
	b.AddMacro(netlist.MacroInst{Name: "m", Model: mm, Pos: geom.Point{X: 10, Y: 10}, Fixed: true})
	less, err := FreeRowArea(b, netlist.DieBottom)
	if err != nil {
		t.Fatal(err)
	}
	if less >= full {
		t.Errorf("macro did not reduce free area: %v -> %v", full, less)
	}
	if full > b.Outline[0].Area()+1e-6 {
		t.Errorf("free area exceeds the outline: %v", full)
	}
}

func TestMacroDemandModeStillLegalizes(t *testing.T) {
	b := randomBlock(t, 150, 4, 8)
	opt := DefaultOptions()
	opt.Macro = MacroDemand
	p := New(opt)
	if err := p.Place(b); err != nil {
		t.Fatal(err)
	}
	checkLegal(t, b, netlist.DieBottom)
	if p.LastLegal().TotalDisp <= 0 {
		t.Error("expected nonzero legalization displacement")
	}
}

func TestMacroHolesreduceDisplacement(t *testing.T) {
	// The paper's §4.2 claim: holes avoid the halos that demand-reduction
	// leaves, which shows up as less legalization displacement.
	dispFor := func(mode MacroMode) float64 {
		b := randomBlock(t, 200, 6, 9)
		opt := DefaultOptions()
		opt.Macro = mode
		p := New(opt)
		if err := p.Place(b); err != nil {
			t.Fatal(err)
		}
		return p.LastLegal().TotalDisp
	}
	hole := dispFor(MacroHoles)
	demand := dispFor(MacroDemand)
	if hole >= demand {
		t.Logf("note: hole disp %v vs demand disp %v (expected hole < demand)", hole, demand)
	}
}
