package place

import (
	"fmt"
	"testing"
	"testing/quick"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
	"fold3d/internal/tech"
)

// TestPropertyPlacementAlwaysLegal: for random small designs, the placer
// must always produce a legal result — inside the outline, row-aligned,
// non-overlapping, off the macros.
func TestPropertyPlacementAlwaysLegal(t *testing.T) {
	lib := tech.NewLibrary()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		b := netlist.NewBlock("q", tech.CPUClock)
		b.Outline[0] = geom.NewRect(0, 0, 60, 48)
		n := 20 + r.Intn(80)
		for i := 0; i < n; i++ {
			b.AddCell(netlist.Instance{
				Name:   fmt.Sprintf("c%d", i),
				Master: lib.MustCell(tech.NAND2, tech.Drives[r.Intn(4)], tech.RVT),
			})
		}
		if r.Bool(0.5) {
			mm := lib.MacroKB
			mm.Width, mm.Height = 15, 10
			b.AddMacro(netlist.MacroInst{Name: "m", Model: mm,
				Pos: geom.Point{X: r.Range(0, 40), Y: r.Range(0, 35)}, Fixed: true})
		}
		for i := 0; i < n-1; i += 2 {
			b.AddNet(netlist.Net{
				Name:   fmt.Sprintf("n%d", i),
				Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: int32(i)},
				Sinks:  []netlist.PinRef{{Kind: netlist.KindCell, Idx: int32(i + 1)}},
			})
		}
		opt := DefaultOptions()
		opt.Seed = seed
		p := New(opt)
		if err := p.Place(b); err != nil {
			return false
		}
		// Legality checks.
		var rects []geom.Rect
		for i := range b.Cells {
			c := &b.Cells[i]
			cr := c.Rect()
			if !b.Outline[0].ContainsRect(cr.Expand(-1e-9)) {
				return false
			}
			rowOff := (c.Pos.Y - b.Outline[0].Lo.Y) / tech.CellHeight
			if d := rowOff - float64(int(rowOff+0.5)); d > 1e-6 || d < -1e-6 {
				return false
			}
			for mi := range b.Macros {
				if b.Macros[mi].Rect().Expand(-1e-9).Overlaps(cr.Expand(-1e-9)) {
					return false
				}
			}
			rects = append(rects, cr)
		}
		for i := 0; i < len(rects); i++ {
			for j := i + 1; j < len(rects); j++ {
				if rects[i].Expand(-1e-6).Overlaps(rects[j].Expand(-1e-6)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTSVPlanRespectsInvariants: every planned TSV is inside the
// outline, on distinct sites, and every 3D net gets exactly one.
func TestPropertyTSVPlanRespectsInvariants(t *testing.T) {
	lib := tech.NewLibrary()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		b := netlist.NewBlock("qq", tech.CPUClock)
		b.Is3D = true
		b.Outline[0] = geom.NewRect(0, 0, 50, 50)
		b.Outline[1] = b.Outline[0]
		pairs := 2 + r.Intn(15)
		for i := 0; i < 2*pairs; i++ {
			die := netlist.DieBottom
			if i%2 == 1 {
				die = netlist.DieTop
			}
			b.AddCell(netlist.Instance{
				Name:   fmt.Sprintf("c%d", i),
				Master: lib.MustCell(tech.INV, 2, tech.RVT),
				Pos:    geom.Point{X: r.Range(1, 48), Y: r.Range(1, 48)},
				Die:    die,
			})
		}
		for i := 0; i < pairs; i++ {
			b.AddNet(netlist.Net{
				Name:   fmt.Sprintf("x%d", i),
				Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: int32(2 * i)},
				Sinks:  []netlist.PinRef{{Kind: netlist.KindCell, Idx: int32(2*i + 1)}},
			})
		}
		if err := PlanTSVs(b, DefaultTSVPlanOptions(1000)); err != nil {
			return false
		}
		if b.NumTSV != pairs || len(b.TSVPads) != pairs {
			return false
		}
		seen := map[[2]int]bool{}
		for i := range b.Nets {
			n := &b.Nets[i]
			if !b.NetIs3D(n) {
				continue
			}
			if len(n.Vias) != 1 || n.Crossings != 1 {
				return false
			}
			if !b.Outline[0].Contains(n.Vias[0]) {
				return false
			}
			key := [2]int{int(n.Vias[0].X * 100), int(n.Vias[0].Y * 100)}
			if seen[key] {
				return false // two nets on one site
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
