// Package partition implements Fiduccia-Mattheyses min-cut bipartitioning
// with gain buckets. The flow uses it twice: to assign blocks to dies during
// 3D floorplanning (core/core style) and — the paper's block folding (§4) —
// to split one block's cells and macros across two dies while minimizing the
// number of intra-block 3D connections (TSVs or F2F vias).
package partition

import (
	"fmt"
	"strconv"

	"fold3d/internal/rng"
)

// Hypergraph is the partitioning input: weighted nodes connected by
// hyperedges. Node and edge IDs are dense indices.
type Hypergraph struct {
	NodeWeight []float64 // area (or any balance weight) per node
	Edges      [][]int32 // node IDs per hyperedge
	EdgeWeight []int     // cut cost per hyperedge (nil = all 1)
	// Fixed pins a node to a side: -1 free, 0 or 1 fixed.
	Fixed []int8
}

// NewHypergraph allocates a hypergraph with n free nodes of weight 1.
func NewHypergraph(n int) *Hypergraph {
	h := &Hypergraph{
		NodeWeight: make([]float64, n),
		Fixed:      make([]int8, n),
	}
	for i := range h.NodeWeight {
		h.NodeWeight[i] = 1
		h.Fixed[i] = -1
	}
	return h
}

// AddEdge appends a hyperedge over the given nodes with weight w.
func (h *Hypergraph) AddEdge(nodes []int32, w int) {
	h.Edges = append(h.Edges, nodes)
	h.EdgeWeight = append(h.EdgeWeight, w)
}

// Result is the outcome of a bipartitioning run.
type Result struct {
	Side    []int8 // 0 or 1 per node
	CutCost int    // total weight of cut hyperedges
	CutNets int    // number of cut hyperedges
	// Weight is the total node weight per side.
	Weight [2]float64
}

// Options configures the FM run.
type Options struct {
	// BalanceTol is the allowed deviation of side-0 weight fraction from
	// Target (e.g. 0.05 means 45..55% for Target 0.5).
	BalanceTol float64
	// Target is the desired fraction of total weight on side 0.
	Target float64
	// MaxPasses bounds the number of FM passes per restart.
	MaxPasses int
	// Seed drives the initial random partition and tie-breaking.
	Seed uint64
	// Restarts runs FM from several random initial partitions and keeps the
	// best; min-cut quality improves markedly with a few restarts.
	Restarts int
}

// DefaultOptions returns balanced bipartitioning with sensible effort.
func DefaultOptions() Options {
	return Options{BalanceTol: 0.05, Target: 0.5, MaxPasses: 10, Seed: 1, Restarts: 6}
}

// Bipartition splits h into two sides minimizing cut cost subject to the
// balance constraint. Fixed nodes never move.
func Bipartition(h *Hypergraph, opt Options) (*Result, error) {
	n := len(h.NodeWeight)
	if n == 0 {
		return nil, fmt.Errorf("partition: empty hypergraph")
	}
	if opt.MaxPasses <= 0 {
		opt.MaxPasses = 10
	}
	if opt.Restarts <= 0 {
		opt.Restarts = 1
	}
	if opt.Target <= 0 || opt.Target >= 1 {
		opt.Target = 0.5
	}
	r := rng.New(opt.Seed)

	// Materialize edge weights (nil means all-1) so the inner loops index a
	// slice instead of branching through edgeWeight.
	ew := h.EdgeWeight
	if ew == nil {
		ew = make([]int, len(h.Edges))
		for i := range ew {
			ew[i] = 1
		}
	}

	// Precompute node -> incident edges in CSR form (same per-node edge
	// order an append-per-node build would give) and the gain bound (sum of
	// incident edge weights caps |gain|).
	incOff := make([]int32, n+1)
	for e, nodes := range h.Edges {
		for _, v := range nodes {
			if int(v) < 0 || int(v) >= n {
				return nil, fmt.Errorf("partition: edge %d references node %d of %d", e, v, n)
			}
			incOff[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		incOff[v+1] += incOff[v]
	}
	incEdges := make([]int32, incOff[n])
	cur := make([]int32, n)
	copy(cur, incOff[:n])
	for e, nodes := range h.Edges {
		for _, v := range nodes {
			incEdges[cur[v]] = int32(e)
			cur[v]++
		}
	}
	maxGain := 1
	for v := 0; v < n; v++ {
		g := 0
		for _, e := range incEdges[incOff[v]:incOff[v+1]] {
			g += ew[e]
		}
		if g > maxGain {
			maxGain = g
		}
	}

	// Scratch shared across restarts and passes: the gain buckets, the
	// per-edge side counts and the move sequence are rebuilt from scratch
	// logically, but reuse one allocation.
	sc := &fmScratch{
		bk:      newBuckets(n, maxGain),
		cnt:     make([][2]int32, len(h.Edges)),
		visited: make([]int32, n),
		delta:   make([]int, n),
	}

	var best *Result
	for restart := 0; restart < opt.Restarts; restart++ {
		res := runFM(h, incOff, incEdges, ew, opt, sc, r.Split("restart"+strconv.Itoa(restart)))
		if best == nil || res.CutCost < best.CutCost {
			best = res
		}
	}
	return best, nil
}

// fmScratch holds the allocations runFM reuses across restarts and passes.
type fmScratch struct {
	bk      *buckets
	cnt     [][2]int32
	seq     []int32
	visited []int32 // per-move neighbor dedup epochs
	epoch   int32
	delta   []int   // per-move accumulated gain deltas
	nbrs    []int32 // per-move neighbors in first-occurrence order
	perm    []int   // initial-partition shuffle scratch
}

// edgeContrib is the contribution of one edge to the gain of a pin on the
// side with population ct (other side co): +w if moving the pin uncuts the
// edge, -w if it newly cuts it.
func edgeContrib(ct, co int32, w int) int {
	g := 0
	if ct == 1 && co > 0 {
		g += w
	}
	if co == 0 {
		g -= w
	}
	return g
}

func (h *Hypergraph) edgeWeight(e int) int {
	if h.EdgeWeight == nil {
		return 1
	}
	return h.EdgeWeight[e]
}

// buckets is the classic FM gain-bucket structure: a doubly linked list of
// nodes per integer gain value, with a cached maximum non-empty bucket.
type buckets struct {
	offset int // gain g lives in head[g+offset]
	head   []int32
	next   []int32
	prev   []int32
	gainOf []int
	in     []bool
	maxIdx int
}

func newBuckets(n, maxGain int) *buckets {
	b := &buckets{
		offset: maxGain,
		head:   make([]int32, 2*maxGain+1),
		next:   make([]int32, n),
		prev:   make([]int32, n),
		gainOf: make([]int, n),
		in:     make([]bool, n),
		maxIdx: -1,
	}
	for i := range b.head {
		b.head[i] = -1
	}
	return b
}

// reset restores the buckets to the freshly-allocated empty state.
func (b *buckets) reset() {
	for i := range b.head {
		b.head[i] = -1
	}
	clear(b.in)
	b.maxIdx = -1
}

func (b *buckets) insert(v int32, gain int) {
	i := gain + b.offset
	b.gainOf[v] = gain
	b.in[v] = true
	b.prev[v] = -1
	b.next[v] = b.head[i]
	if b.head[i] != -1 {
		b.prev[b.head[i]] = v
	}
	b.head[i] = v
	if i > b.maxIdx {
		b.maxIdx = i
	}
}

func (b *buckets) remove(v int32) {
	if !b.in[v] {
		return
	}
	b.in[v] = false
	i := b.gainOf[v] + b.offset
	if b.prev[v] != -1 {
		b.next[b.prev[v]] = b.next[v]
	} else {
		b.head[i] = b.next[v]
	}
	if b.next[v] != -1 {
		b.prev[b.next[v]] = b.prev[v]
	}
}

func (b *buckets) update(v int32, gain int) {
	if b.in[v] && b.gainOf[v] == gain {
		return
	}
	b.remove(v)
	b.insert(v, gain)
}

// popBest returns the highest-gain node for which feasible returns true,
// removing it. Returns -1 if none qualifies.
func (b *buckets) popBest(feasible func(v int32) bool) int32 {
	for b.maxIdx >= 0 {
		if b.head[b.maxIdx] == -1 {
			b.maxIdx--
			continue
		}
		for v := b.head[b.maxIdx]; v != -1; v = b.next[v] {
			if feasible(v) {
				b.remove(v)
				return v
			}
		}
		// Every node at this gain is balance-blocked; scan lower gains.
		// (Rare: fall through by linear scan below maxIdx.)
		for i := b.maxIdx - 1; i >= 0; i-- {
			for v := b.head[i]; v != -1; v = b.next[v] {
				if feasible(v) {
					b.remove(v)
					return v
				}
			}
		}
		return -1
	}
	return -1
}

// runFM performs one multi-pass FM descent from a random balanced start.
func runFM(h *Hypergraph, incOff, incEdges []int32, ew []int, opt Options, sc *fmScratch, r *rng.R) *Result {
	n := len(h.NodeWeight)
	side := make([]int8, n)
	var total float64
	for _, w := range h.NodeWeight {
		total += w
	}

	// Initial partition: honor fixed nodes, then greedily fill side 0 to the
	// target weight in random order.
	var w0 float64
	for i := range side {
		side[i] = 1
	}
	for i := range side {
		if h.Fixed[i] == 0 {
			side[i] = 0
			w0 += h.NodeWeight[i]
		}
	}
	sc.perm = r.PermInto(sc.perm[:0], n)
	for _, v := range sc.perm {
		if h.Fixed[v] != -1 {
			continue
		}
		if w0+h.NodeWeight[v] <= opt.Target*total {
			side[v] = 0
			w0 += h.NodeWeight[v]
		}
	}

	lo := (opt.Target - opt.BalanceTol) * total
	hi := (opt.Target + opt.BalanceTol) * total

	// Per-edge side population counts (scratch reused across restarts).
	cnt := sc.cnt
	clear(cnt)
	for e, nodes := range h.Edges {
		for _, v := range nodes {
			cnt[e][side[v]]++
		}
	}

	gain := func(v int32) int {
		g := 0
		s := side[v]
		for _, e := range incEdges[incOff[v]:incOff[v+1]] {
			w := ew[e]
			c := &cnt[e]
			if c[s] == 1 && c[1-s] > 0 {
				g += w // moving v uncuts e
			}
			if c[1-s] == 0 {
				g -= w // moving v newly cuts e
			}
		}
		return g
	}

	applyMove := func(v int32) {
		s := side[v]
		for _, e := range incEdges[incOff[v]:incOff[v+1]] {
			cnt[e][s]--
			cnt[e][1-s]++
		}
		if s == 0 {
			w0 -= h.NodeWeight[v]
		} else {
			w0 += h.NodeWeight[v]
		}
		side[v] = 1 - s
	}

	for pass := 0; pass < opt.MaxPasses; pass++ {
		bk := sc.bk
		bk.reset()
		for v := 0; v < n; v++ {
			if h.Fixed[v] == -1 {
				bk.insert(int32(v), gain(int32(v)))
			}
		}
		feasible := func(v int32) bool {
			nw0 := w0
			if side[v] == 0 {
				nw0 -= h.NodeWeight[v]
			} else {
				nw0 += h.NodeWeight[v]
			}
			return nw0 >= lo && nw0 <= hi
		}

		seq := sc.seq[:0]
		cum, bestCum, bestAt := 0, 0, -1
		for {
			v := bk.popBest(feasible)
			if v == -1 {
				break
			}
			cum += bk.gainOf[v]
			applyMove(v)
			seq = append(seq, v)
			if cum > bestCum {
				bestCum, bestAt = cum, len(seq)-1
			}
			// Refresh gains of still-unlocked neighbors by this move's
			// per-edge gain deltas. For an in-bucket node bk.gainOf always
			// equals its current gain (it is refreshed on every neighbor
			// move), so one accumulated delta per neighbor reproduces the
			// full recompute — same values, same first-occurrence update
			// order, at a fraction of the cost.
			sc.epoch++
			nbrs := sc.nbrs[:0]
			to := side[v] // applyMove already flipped v
			// v's duplicate incidences in one edge sit adjacently in the
			// CSR list (they were appended during that edge's scan), so a
			// run length m gives the edge's full count shift at once.
			for ie := incOff[v]; ie < incOff[v+1]; {
				e := incEdges[ie]
				m := int32(1)
				for ie+m < incOff[v+1] && incEdges[ie+m] == e {
					m++
				}
				ie += m
				w := ew[e]
				c := &cnt[e]
				a0, a1 := c[0], c[1]
				b0, b1 := a0, a1 // counts before the move
				if to == 1 {
					b0 += m
					b1 -= m
				} else {
					b0 -= m
					b1 += m
				}
				d0 := edgeContrib(a0, a1, w) - edgeContrib(b0, b1, w)
				d1 := edgeContrib(a1, a0, w) - edgeContrib(b1, b0, w)
				for _, u := range h.Edges[e] {
					d := d0
					if side[u] == 1 {
						d = d1
					}
					if sc.visited[u] != sc.epoch {
						sc.visited[u] = sc.epoch
						sc.delta[u] = d
						nbrs = append(nbrs, u)
					} else {
						sc.delta[u] += d
					}
				}
			}
			sc.nbrs = nbrs
			for _, u := range nbrs {
				if d := sc.delta[u]; d != 0 && bk.in[u] {
					bk.update(u, bk.gainOf[u]+d)
				}
			}
			// Early exit: long negative streaks rarely recover and the
			// rollback undoes them anyway.
			if len(seq)-1-bestAt > 200 && len(seq) > n/4 {
				break
			}
		}
		sc.seq = seq // keep the grown backing array for the next pass
		// Roll back moves after the best prefix.
		for i := len(seq) - 1; i > bestAt; i-- {
			applyMove(seq[i])
		}
		if bestCum <= 0 {
			break // converged: no improving prefix
		}
	}

	res := &Result{Side: side}
	for e := range h.Edges {
		if cnt[e][0] > 0 && cnt[e][1] > 0 {
			res.CutNets++
			res.CutCost += h.edgeWeight(e)
		}
	}
	for v, s := range side {
		res.Weight[s] += h.NodeWeight[v]
	}
	return res
}
