package partition

import (
	"testing"
	"testing/quick"

	"fold3d/internal/rng"
)

// twoCliques builds two k-cliques joined by `bridges` edges; the min cut is
// exactly `bridges`.
func twoCliques(k, bridges int) *Hypergraph {
	h := NewHypergraph(2 * k)
	for side := 0; side < 2; side++ {
		base := side * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				h.AddEdge([]int32{int32(base + i), int32(base + j)}, 1)
			}
		}
	}
	for b := 0; b < bridges; b++ {
		h.AddEdge([]int32{int32(b % k), int32(k + (b+1)%k)}, 1)
	}
	return h
}

func TestBipartitionFindsBridgeCut(t *testing.T) {
	h := twoCliques(12, 3)
	res, err := Bipartition(h, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.CutCost != 3 {
		t.Errorf("cut = %d, want 3 (the bridges)", res.CutCost)
	}
	// The cliques must be intact: all of clique A on one side.
	side0 := res.Side[0]
	for i := 1; i < 12; i++ {
		if res.Side[i] != side0 {
			t.Fatalf("clique A split at node %d", i)
		}
	}
	for i := 13; i < 24; i++ {
		if res.Side[i] != res.Side[12] {
			t.Fatalf("clique B split at node %d", i)
		}
	}
	if side0 == res.Side[12] {
		t.Error("cliques ended on the same side")
	}
}

func TestBalanceRespected(t *testing.T) {
	h := twoCliques(10, 2)
	opt := DefaultOptions()
	opt.BalanceTol = 0.05
	res, err := Bipartition(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Weight[0] + res.Weight[1]
	frac := res.Weight[0] / total
	if frac < 0.45-1e-9 || frac > 0.55+1e-9 {
		t.Errorf("balance violated: %v", frac)
	}
}

func TestWeightedNodesBalance(t *testing.T) {
	// One heavy node (weight 9) and nine light nodes (weight 1): a
	// 0.5 +/- 0.2 balance forces the heavy node alone on one side.
	h := NewHypergraph(10)
	h.NodeWeight[0] = 9
	for i := 1; i < 10; i++ {
		h.AddEdge([]int32{0, int32(i)}, 1)
	}
	opt := DefaultOptions()
	opt.BalanceTol = 0.2
	res, err := Bipartition(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	frac := res.Weight[0] / 18
	if frac < 0.3-1e-9 || frac > 0.7+1e-9 {
		t.Errorf("weighted balance violated: %v", frac)
	}
}

func TestFixedNodesStay(t *testing.T) {
	h := twoCliques(8, 1)
	h.Fixed[0] = 0
	h.Fixed[8] = 1
	res, err := Bipartition(h, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Side[0] != 0 || res.Side[8] != 1 {
		t.Errorf("fixed nodes moved: %d, %d", res.Side[0], res.Side[8])
	}
}

func TestWeightedEdgesPreferred(t *testing.T) {
	// A 4-node path with a heavy middle edge: the cut must avoid it.
	h := NewHypergraph(4)
	h.AddEdge([]int32{0, 1}, 1)
	h.AddEdge([]int32{1, 2}, 10)
	h.AddEdge([]int32{2, 3}, 1)
	opt := DefaultOptions()
	opt.BalanceTol = 0.3
	res, err := Bipartition(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Side[1] != res.Side[2] {
		t.Errorf("heavy edge cut: sides %v", res.Side)
	}
}

func TestDeterminism(t *testing.T) {
	h1 := twoCliques(10, 2)
	h2 := twoCliques(10, 2)
	r1, err := Bipartition(h1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Bipartition(h2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Side {
		if r1.Side[i] != r2.Side[i] {
			t.Fatal("same seed must give the same partition")
		}
	}
}

func TestEmptyHypergraphErrors(t *testing.T) {
	if _, err := Bipartition(NewHypergraph(0), DefaultOptions()); err == nil {
		t.Error("expected error for empty hypergraph")
	}
}

func TestBadEdgeErrors(t *testing.T) {
	h := NewHypergraph(2)
	h.AddEdge([]int32{0, 7}, 1)
	if _, err := Bipartition(h, DefaultOptions()); err == nil {
		t.Error("expected error for out-of-range edge")
	}
}

func TestCutCountMatchesSides(t *testing.T) {
	// Property: reported CutNets equals a recount from the side vector.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(30)
		h := NewHypergraph(n)
		edges := 2 * n
		for e := 0; e < edges; e++ {
			k := 2 + r.Intn(3)
			nodes := make([]int32, 0, k)
			for i := 0; i < k; i++ {
				nodes = append(nodes, int32(r.Intn(n)))
			}
			h.AddEdge(nodes, 1)
		}
		opt := DefaultOptions()
		opt.Seed = seed
		opt.Restarts = 1
		res, err := Bipartition(h, opt)
		if err != nil {
			return false
		}
		recount := 0
		for _, nodes := range h.Edges {
			has := [2]bool{}
			for _, v := range nodes {
				has[res.Side[v]] = true
			}
			if has[0] && has[1] {
				recount++
			}
		}
		return recount == res.CutNets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFMBeatsRandomSplit(t *testing.T) {
	// FM should comfortably beat the expected random cut on structured
	// graphs.
	h := twoCliques(16, 4)
	res, err := Bipartition(h, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A random balanced split of two 16-cliques cuts about half of each
	// clique's edges (~120); FM must find the 4 bridges.
	if res.CutCost > 8 {
		t.Errorf("FM cut %d is far from the optimum 4", res.CutCost)
	}
}
