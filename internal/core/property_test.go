package core

import (
	"testing"
	"testing/quick"

	"fold3d/internal/netlist"
)

// TestPropertyFoldPreservesNetlist: folding only reassigns dies — cell,
// macro, net and port counts are untouched and the block stays valid.
func TestPropertyFoldPreservesNetlist(t *testing.T) {
	f := func(seed uint64) bool {
		b := groupedBlock(nil, 12+int(seed%20))
		nc, nm, nn, np := len(b.Cells), len(b.Macros), len(b.Nets), len(b.Ports)
		if _, err := Fold(b, FoldOptions{Mode: FoldMinCut, Seed: seed}); err != nil {
			return false
		}
		return len(b.Cells) == nc && len(b.Macros) == nm &&
			len(b.Nets) == nn && len(b.Ports) == np &&
			b.Is3D && b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMinCutNeverWorseThanNatural: for the grouped block whose
// optimal split is the group structure, min-cut must match or beat the
// natural fold's cut.
func TestPropertyMinCutNeverWorseThanNatural(t *testing.T) {
	f := func(seed uint64) bool {
		bn := groupedBlock(nil, 10+int(seed%15))
		rn, err := Fold(bn, FoldOptions{Mode: FoldNatural,
			GroupDie: map[string]int{"pcx": 0, "cpx": 1}, Seed: seed})
		if err != nil {
			return false
		}
		bm := groupedBlock(nil, 10+int(seed%15))
		rm, err := Fold(bm, FoldOptions{Mode: FoldMinCut, BalanceTol: 0.15, Seed: seed})
		if err != nil {
			return false
		}
		return rm.CutNets <= rn.CutNets+1 // FM may trade one cut for balance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInflateMonotone: inflating the cut target never reduces the
// achieved cut.
func TestPropertyInflateMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		base := groupedBlock(nil, 30)
		r0, err := Fold(base, FoldOptions{Mode: FoldNatural,
			GroupDie: map[string]int{"pcx": 0, "cpx": 1}, Seed: seed})
		if err != nil {
			return false
		}
		prev := r0.CutNets
		for _, target := range []int{5, 15, 30} {
			b := groupedBlock(nil, 30)
			r, err := Fold(b, FoldOptions{Mode: FoldNatural,
				GroupDie:     map[string]int{"pcx": 0, "cpx": 1},
				InflateCutTo: target, Seed: seed})
			if err != nil {
				return false
			}
			if r.CutNets < prev {
				return false
			}
			prev = r.CutNets
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

var _ = netlist.DieBottom // keep the import for documentation symmetry
