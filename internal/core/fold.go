package core

import (
	"fmt"
	"sort"

	"fold3d/internal/errs"
	"fold3d/internal/netlist"
	"fold3d/internal/partition"
	"fold3d/internal/rng"
)

// FoldMode selects how a block is split across the two dies.
type FoldMode int

const (
	// FoldNatural assigns whole instance groups to dies per GroupDie (the
	// paper's CCX fold: PCX on one die, CPX on the other, §4.3).
	FoldNatural FoldMode = iota
	// FoldMinCut runs FM over cells, macros and ports to minimize the
	// number of die-crossing nets under an area balance (§4.4).
	FoldMinCut
	// FoldSecondLevel folds the groups marked foldable individually (each
	// split across both dies by min-cut) while unfoldable groups stay whole
	// and are packed to balance area — the paper's SPC FUB folding (§4.5).
	FoldSecondLevel
)

// FoldOptions configures a fold.
type FoldOptions struct {
	Mode FoldMode
	// GroupDie maps group name -> die for FoldNatural; unlisted groups are
	// balanced automatically.
	GroupDie map[string]int
	// FoldGroups lists the groups to split in FoldSecondLevel mode (nil =
	// every group whose spec marked it foldable is the caller's business to
	// list here).
	FoldGroups []string
	// BalanceTol is the per-die area balance tolerance.
	BalanceTol float64
	// InflateCutTo, when positive, randomly exchanges nodes between dies
	// after partitioning until at least this many nets cross — the paper's
	// TSV-count sweeps (Figure 2 text, Figure 7) explore exactly such
	// partition families.
	InflateCutTo int
	Seed         uint64
}

// DefaultFoldOptions returns a balanced min-cut fold.
func DefaultFoldOptions() FoldOptions {
	return FoldOptions{Mode: FoldMinCut, BalanceTol: 0.08, Seed: 3}
}

// FoldResult reports the partition outcome.
type FoldResult struct {
	// CutNets is the number of die-crossing signal nets (before any
	// repeater insertion), i.e. the number of 3D connections needed.
	CutNets int
	// AreaPerDie is the placed-object area per die.
	AreaPerDie [2]float64
}

// Fold splits block b across two dies in place: it sets the Die field of
// every cell, macro and port, and marks the block 3D. Placement, via
// planning and everything downstream is the flow's job.
func Fold(b *netlist.Block, opt FoldOptions) (*FoldResult, error) {
	if opt.BalanceTol <= 0 {
		opt.BalanceTol = 0.08
	}
	switch opt.Mode {
	case FoldNatural:
		if err := foldNatural(b, opt); err != nil {
			return nil, err
		}
	case FoldMinCut:
		if err := foldMinCut(b, opt, nil); err != nil {
			return nil, err
		}
	case FoldSecondLevel:
		if err := foldSecondLevel(b, opt); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: %w: unknown fold mode %d", errs.ErrBadOptions, opt.Mode)
	}
	b.Is3D = true
	if opt.InflateCutTo > 0 {
		inflateCut(b, opt.InflateCutTo, rng.New(opt.Seed).Split("inflate"))
	}
	res := &FoldResult{}
	for i := range b.Nets {
		if b.Nets[i].Kind == netlist.Signal && b.NetIs3D(&b.Nets[i]) {
			res.CutNets++
		}
	}
	ab := netlist.CellAreaByDie(b)
	res.AreaPerDie = ab
	return res, nil
}

// foldNatural assigns groups per GroupDie; unlisted groups go to the lighter
// die.
func foldNatural(b *netlist.Block, opt FoldOptions) error {
	if len(opt.GroupDie) == 0 {
		return fmt.Errorf("core: %w: FoldNatural needs GroupDie for block %s", errs.ErrBadOptions, b.Name)
	}
	var area [2]float64
	assign := func(group string) (netlist.Die, bool) {
		d, ok := opt.GroupDie[group]
		if !ok {
			return 0, false
		}
		if d != 0 && d != 1 {
			return 0, false
		}
		return netlist.Die(d), true
	}
	// Two passes: listed groups first so the balance of the rest is
	// computed against them.
	for i := range b.Cells {
		if d, ok := assign(b.Cells[i].Group); ok {
			b.Cells[i].Die = d
			area[d] += b.Cells[i].Master.Area()
		}
	}
	for i := range b.Macros {
		if d, ok := assign(b.Macros[i].Group); ok {
			b.Macros[i].Die = d
			area[d] += b.Macros[i].Model.Area()
		}
	}
	// Unlisted groups: whole-group to the lighter die.
	rest := make(map[string]float64)
	for i := range b.Cells {
		if _, ok := assign(b.Cells[i].Group); !ok {
			rest[b.Cells[i].Group] += b.Cells[i].Master.Area()
		}
	}
	for i := range b.Macros {
		if _, ok := assign(b.Macros[i].Group); !ok {
			rest[b.Macros[i].Group] += b.Macros[i].Model.Area()
		}
	}
	// Deterministic heaviest-first packing of the unlisted groups (map
	// iteration order must not leak into the result).
	type ga struct {
		g string
		a float64
	}
	var restOrder []ga
	for g, a := range rest {
		restOrder = append(restOrder, ga{g, a})
	}
	sort.Slice(restOrder, func(i, j int) bool {
		if restOrder[i].a > restOrder[j].a {
			return true
		}
		if restOrder[i].a < restOrder[j].a {
			return false
		}
		return restOrder[i].g < restOrder[j].g
	})
	dieOf := make(map[string]netlist.Die)
	for _, e := range restOrder {
		d := netlist.DieBottom
		if area[1] < area[0] {
			d = netlist.DieTop
		}
		dieOf[e.g] = d
		area[d] += e.a
	}
	for i := range b.Cells {
		if d, ok := dieOf[b.Cells[i].Group]; ok {
			b.Cells[i].Die = d
		}
	}
	for i := range b.Macros {
		if d, ok := dieOf[b.Macros[i].Group]; ok {
			b.Macros[i].Die = d
		}
	}
	MovePortsWithLogic(b)
	return nil
}

// foldMinCut partitions with FM. pin, when non-nil, pre-assigns node
// fixed sides (used by second-level folding for whole-group supernodes).
func foldMinCut(b *netlist.Block, opt FoldOptions, onlyGroups map[string]bool) error {
	// Node numbering: cells, then macros, then ports.
	nc, nm, np := len(b.Cells), len(b.Macros), len(b.Ports)
	h := partition.NewHypergraph(nc + nm + np)
	for i := range b.Cells {
		h.NodeWeight[i] = b.Cells[i].Master.Area()
	}
	for i := range b.Macros {
		h.NodeWeight[nc+i] = b.Macros[i].Model.Area()
	}
	for i := range b.Ports {
		h.NodeWeight[nc+nm+i] = 0.01 // ports follow their logic nearly free
	}
	if onlyGroups != nil {
		// Freeze everything outside the folded groups at its current die.
		for i := range b.Cells {
			if !onlyGroups[b.Cells[i].Group] {
				h.Fixed[i] = int8(b.Cells[i].Die)
			}
		}
		for i := range b.Macros {
			if !onlyGroups[b.Macros[i].Group] {
				h.Fixed[nc+i] = int8(b.Macros[i].Die)
			}
		}
	}
	ref2node := func(r netlist.PinRef) int32 {
		switch r.Kind {
		case netlist.KindCell:
			return r.Idx
		case netlist.KindMacro:
			return int32(nc) + r.Idx
		default:
			return int32(nc+nm) + r.Idx
		}
	}
	// One pin arena for every hyperedge instead of a slice per net; edges
	// are never mutated after construction, so they can share storage.
	totPins, nEdges := 0, 0
	for i := range b.Nets {
		if b.Nets[i].Kind == netlist.Signal {
			totPins += len(b.Nets[i].Sinks) + 1
			nEdges++
		}
	}
	arena := make([]int32, 0, totPins)
	h.Edges = make([][]int32, 0, nEdges)
	h.EdgeWeight = make([]int, 0, nEdges)
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Kind != netlist.Signal {
			continue
		}
		start := len(arena)
		arena = append(arena, ref2node(n.Driver))
		w := 1
		if n.Driver.Kind == netlist.KindMacro {
			w = 4 // keep memory datapaths with their macro
		}
		for _, s := range n.Sinks {
			arena = append(arena, ref2node(s))
			if s.Kind == netlist.KindMacro {
				w = 4
			}
		}
		h.AddEdge(arena[start:len(arena):len(arena)], w)
	}
	// Balance target: with pre-fixed nodes, aim for half of the FREE weight
	// on each side on top of whatever is already fixed per die.
	var total, fixed0, freeW float64
	for i, w := range h.NodeWeight {
		total += w
		switch h.Fixed[i] {
		case 0:
			fixed0 += w
		case -1:
			freeW += w
		}
	}
	popt := partition.DefaultOptions()
	popt.Seed = opt.Seed + 1
	if total > 0 && freeW > 0 {
		popt.Target = (fixed0 + 0.5*freeW) / total
		popt.BalanceTol = opt.BalanceTol * freeW / total
		if popt.BalanceTol < 0.005 {
			popt.BalanceTol = 0.005
		}
	} else {
		popt.BalanceTol = opt.BalanceTol
	}
	res, err := partition.Bipartition(h, popt)
	if err != nil {
		return fmt.Errorf("core: folding %s: %v", b.Name, err)
	}
	for i := range b.Cells {
		b.Cells[i].Die = netlist.Die(res.Side[i])
	}
	for i := range b.Macros {
		b.Macros[i].Die = netlist.Die(res.Side[nc+i])
	}
	for i := range b.Ports {
		b.Ports[i].Die = netlist.Die(res.Side[nc+nm+i])
	}
	return nil
}

// foldSecondLevel folds the listed groups by min-cut while the others stay
// whole, greedily packed onto dies to balance area.
func foldSecondLevel(b *netlist.Block, opt FoldOptions) error {
	if len(opt.FoldGroups) == 0 {
		return fmt.Errorf("core: %w: FoldSecondLevel needs FoldGroups for block %s", errs.ErrBadOptions, b.Name)
	}
	folded := make(map[string]bool, len(opt.FoldGroups))
	for _, g := range opt.FoldGroups {
		folded[g] = true
	}
	// Pack unfolded groups whole, heaviest first, onto the lighter die.
	groupArea := make(map[string]float64)
	for i := range b.Cells {
		if !folded[b.Cells[i].Group] {
			groupArea[b.Cells[i].Group] += b.Cells[i].Master.Area()
		}
	}
	for i := range b.Macros {
		if !folded[b.Macros[i].Group] {
			groupArea[b.Macros[i].Group] += b.Macros[i].Model.Area()
		}
	}
	type ga struct {
		g string
		a float64
	}
	var order []ga
	for g, a := range groupArea {
		order = append(order, ga{g, a})
	}
	// Deterministic heaviest-first; group name breaks area ties so the
	// assignment cannot depend on map iteration order.
	sort.Slice(order, func(i, j int) bool {
		if order[i].a > order[j].a {
			return true
		}
		if order[i].a < order[j].a {
			return false
		}
		return order[i].g < order[j].g
	})
	var area [2]float64
	dieOf := make(map[string]netlist.Die)
	for _, e := range order {
		d := netlist.DieBottom
		if area[1] < area[0] {
			d = netlist.DieTop
		}
		dieOf[e.g] = d
		area[d] += e.a
	}
	for i := range b.Cells {
		if d, ok := dieOf[b.Cells[i].Group]; ok {
			b.Cells[i].Die = d
		}
	}
	for i := range b.Macros {
		if d, ok := dieOf[b.Macros[i].Group]; ok {
			b.Macros[i].Die = d
		}
	}
	// Min-cut each folded group individually, with everything else frozen:
	// second-level folding means every listed FUB is itself split across
	// the two dies (paper Figure 3: exu0_top/exu0_bot and so on), not that
	// the folded set may be divided FUB-by-FUB.
	for i, g := range opt.FoldGroups {
		gopt := opt
		gopt.Seed = opt.Seed + uint64(i)*131
		if err := foldMinCut(b, gopt, map[string]bool{g: true}); err != nil {
			return err
		}
	}
	MovePortsWithLogic(b)
	return nil
}

// MovePortsWithLogic puts each port on the die where most of its connected
// pins live (the paper moves the CCX I/O pins with their crossbar half).
// The chip flow calls it again after port hookup, since chip-level ports are
// created after folding.
func MovePortsWithLogic(b *netlist.Block) {
	votes := make(map[int32][2]int)
	count := func(portIdx int32, other netlist.PinRef) {
		v := votes[portIdx]
		v[b.PinDie(other)]++
		votes[portIdx] = v
	}
	for i := range b.Nets {
		n := &b.Nets[i]
		if n.Driver.Kind == netlist.KindPort {
			for _, s := range n.Sinks {
				if s.Kind != netlist.KindPort {
					count(n.Driver.Idx, s)
				}
			}
		}
		for _, s := range n.Sinks {
			if s.Kind == netlist.KindPort && n.Driver.Kind != netlist.KindPort {
				count(s.Idx, n.Driver)
			}
		}
	}
	for idx, v := range votes {
		if v[1] > v[0] {
			b.Ports[idx].Die = netlist.DieTop
		} else {
			b.Ports[idx].Die = netlist.DieBottom
		}
	}
}

// inflateCut randomly exchanges same-kind node pairs across dies until the
// number of die-crossing nets reaches target (or the swap budget runs out).
// It preserves area balance by swapping pairs rather than moving singles.
func inflateCut(b *netlist.Block, target int, r *rng.R) {
	cut := func() int {
		c := 0
		for i := range b.Nets {
			if b.Nets[i].Kind == netlist.Signal && b.NetIs3D(&b.Nets[i]) {
				c++
			}
		}
		return c
	}
	var d0, d1 []int
	for i := range b.Cells {
		if b.Cells[i].Die == netlist.DieBottom {
			d0 = append(d0, i)
		} else {
			d1 = append(d1, i)
		}
	}
	budget := 20 * len(b.Cells)
	for cut() < target && budget > 0 && len(d0) > 0 && len(d1) > 0 {
		i0 := r.Intn(len(d0))
		i1 := r.Intn(len(d1))
		c0, c1 := d0[i0], d1[i1]
		b.Cells[c0].Die, b.Cells[c1].Die = netlist.DieTop, netlist.DieBottom
		d0[i0], d1[i1] = c1, c0
		budget--
	}
}
