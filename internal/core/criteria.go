// Package core implements the paper's primary contributions as reusable
// engines over the substrate packages:
//
//   - the block-folding criteria of §4.1 (total-power portion, net-power
//     portion, long-wire count) that select which blocks are worth splitting
//     across dies;
//   - the block folder itself (§4.3-4.5): natural group folds (CCX's
//     PCX/CPX), min-cut folds, second-level FUB folds inside a core, and
//     cut-inflated partitions for the paper's TSV-count sweeps;
//   - bonding-style evaluation hooks (F2B TSV planning vs F2F via routing)
//     used by the flow.
package core

import (
	"sort"
)

// BlockProfile is the per-block data the folding criteria consume, produced
// by the 2D flow (the paper's Table 3).
type BlockProfile struct {
	Name string
	// Copies is the number of identical instances (8 for SPC/L2D/L2T/L2B).
	Copies int
	// TotalPowerMW is the power of one instance.
	TotalPowerMW float64
	// NetPowerMW is the net (wire+pin) component of one instance.
	NetPowerMW float64
	// LongWires is the count of wires beyond the 100x-cell-height threshold.
	LongWires int
	// PeakTempC is the predicted peak tile temperature of the block (°C)
	// from the thermal engine; zero when no thermal prediction ran. Only
	// consulted when the criteria carry a temperature weight.
	PeakTempC float64
}

// NetPowerPortion returns net power over total power for the block.
func (p BlockProfile) NetPowerPortion() float64 {
	if p.TotalPowerMW == 0 {
		return 0
	}
	return p.NetPowerMW / p.TotalPowerMW
}

// Criteria are the §4.1 folding thresholds.
type Criteria struct {
	// MinTotalPowerPortion: the block (one instance) must consume at least
	// this share of system power ("more than 1%" in the paper).
	MinTotalPowerPortion float64
	// MinNetPowerPortion: folding only pays when wirelength reduction can
	// move total power; memory-dominated blocks fall below this.
	MinNetPowerPortion float64
	// MinLongWires: the block must have enough long wires for folding to
	// shorten.
	MinLongWires int
	// TempWeightPerC makes selection hotspot-aware: folding concentrates a
	// block's power into half the footprint, so a block already predicted
	// hot must promise proportionally more power benefit to justify it. For
	// every °C of PeakTempC above TRefC, the required total-power portion is
	// scaled up by this factor. Zero (the default) keeps selection
	// temperature-blind and Score byte-identical to the historical behavior.
	TempWeightPerC float64
	// TRefC is the temperature (°C) above which TempWeightPerC starts
	// raising the folding bar; typically the ambient/heatsink temperature.
	TRefC float64
}

// DefaultCriteria mirrors the paper's working thresholds: >=1% system power,
// >=35% net-power portion, and a sizeable long-wire population. The paper
// folds L2D despite its ~29% net-power portion because of its footprint
// leverage, so callers can whitelist blocks past the net-power test.
func DefaultCriteria() Criteria {
	return Criteria{
		MinTotalPowerPortion: 0.01,
		MinNetPowerPortion:   0.35,
		MinLongWires:         1,
	}
}

// Selection is the outcome of scoring one block.
type Selection struct {
	Profile           BlockProfile
	TotalPowerPortion float64
	// MinPortionUsed is the effective total-power-portion threshold this
	// block was held to: the criteria's MinTotalPowerPortion, scaled up by
	// the temperature weight when the block is predicted hot.
	MinPortionUsed float64
	PassPower      bool
	PassNetPortion bool
	PassLongWires  bool
}

// Selected reports whether all three criteria pass.
func (s Selection) Selected() bool {
	return s.PassPower && s.PassNetPortion && s.PassLongWires
}

// Score evaluates every profile against the criteria. systemPowerMW is the
// full-chip power (all copies of all blocks). Results are sorted by
// total-power portion, highest first — the paper's Table 3 ordering.
func Score(profiles []BlockProfile, systemPowerMW float64, c Criteria) []Selection {
	out := make([]Selection, 0, len(profiles))
	for _, p := range profiles {
		portion := 0.0
		if systemPowerMW > 0 {
			portion = p.TotalPowerMW / systemPowerMW
		}
		minPortion := c.MinTotalPowerPortion
		if c.TempWeightPerC > 0 && p.PeakTempC > c.TRefC {
			minPortion *= 1 + c.TempWeightPerC*(p.PeakTempC-c.TRefC)
		}
		out = append(out, Selection{
			Profile:           p,
			TotalPowerPortion: portion,
			MinPortionUsed:    minPortion,
			PassPower:         portion >= minPortion,
			PassNetPortion:    p.NetPowerPortion() >= c.MinNetPowerPortion,
			PassLongWires:     p.LongWires >= c.MinLongWires,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].TotalPowerPortion > out[j].TotalPowerPortion
	})
	return out
}

// SystemPower sums all copies of all profiles.
func SystemPower(profiles []BlockProfile) float64 {
	var total float64
	for _, p := range profiles {
		n := p.Copies
		if n < 1 {
			n = 1
		}
		total += p.TotalPowerMW * float64(n)
	}
	return total
}
