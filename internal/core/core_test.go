package core

import (
	"fmt"
	"testing"

	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
	"fold3d/internal/tech"
)

func TestCriteriaScoring(t *testing.T) {
	profiles := []BlockProfile{
		{Name: "SPC", Copies: 8, TotalPowerMW: 580, NetPowerMW: 320, LongWires: 277},
		{Name: "L2D", Copies: 8, TotalPowerMW: 210, NetPowerMW: 61, LongWires: 65}, // net-power poor
		{Name: "CCX", Copies: 1, TotalPowerMW: 280, NetPowerMW: 161, LongWires: 124},
		{Name: "CCU", Copies: 1, TotalPowerMW: 20, NetPowerMW: 9, LongWires: 4}, // too small
	}
	system := SystemPower(profiles)
	want := 580*8 + 210*8 + 280 + 20
	if int(system) != want {
		t.Fatalf("SystemPower = %v, want %d", system, want)
	}
	sel := Score(profiles, system, DefaultCriteria())
	if len(sel) != 4 {
		t.Fatalf("selections = %d", len(sel))
	}
	// Sorted by power portion descending.
	for i := 1; i < len(sel); i++ {
		if sel[i].TotalPowerPortion > sel[i-1].TotalPowerPortion {
			t.Error("selections not sorted")
		}
	}
	byName := map[string]Selection{}
	for _, s := range sel {
		byName[s.Profile.Name] = s
	}
	if !byName["SPC"].Selected() || !byName["CCX"].Selected() {
		t.Error("SPC and CCX must pass all criteria")
	}
	if byName["L2D"].Selected() {
		t.Error("L2D must fail the net-power criterion (paper: ~29% net power)")
	}
	if !byName["L2D"].PassPower || byName["L2D"].PassNetPortion {
		t.Error("L2D should pass power but fail net portion")
	}
	if byName["CCU"].PassPower {
		t.Error("CCU is below the 1% system-power bar")
	}
}

// groupedBlock builds a block with two isolated groups plus a bridge net,
// and a couple of macros.
func groupedBlock(t *testing.T, perGroup int) *netlist.Block {
	if t != nil {
		t.Helper()
	}
	lib := tech.NewLibrary()
	r := rng.New(11)
	b := netlist.NewBlock("g", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 60, 60)
	groups := []string{"pcx", "cpx"}
	for gi, g := range groups {
		for i := 0; i < perGroup; i++ {
			b.AddCell(netlist.Instance{
				Name:   fmt.Sprintf("%s_c%d", g, i),
				Master: lib.MustCell(tech.NAND2, 2, tech.RVT),
				Group:  g,
				Pos:    geom.Point{X: r.Range(1, 55), Y: r.Range(1, 55)},
			})
			_ = gi
		}
	}
	// Intra-group nets.
	for gi := range groups {
		base := int32(gi * perGroup)
		for i := 0; i < perGroup-1; i++ {
			b.AddNet(netlist.Net{
				Name:   fmt.Sprintf("n%d_%d", gi, i),
				Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: base + int32(i)},
				Sinks:  []netlist.PinRef{{Kind: netlist.KindCell, Idx: base + int32(i+1)}},
			})
		}
	}
	// One bridge, driven by the tail of the pcx chain (which drives no
	// other net, keeping the netlist single-driver).
	b.AddNet(netlist.Net{
		Name:   "bridge",
		Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: int32(perGroup - 1)},
		Sinks:  []netlist.PinRef{{Kind: netlist.KindCell, Idx: int32(perGroup)}},
	})
	mm := lib.MacroKB
	mm.Width, mm.Height = 5, 4
	b.AddMacro(netlist.MacroInst{Name: "m0", Model: mm, Group: "pcx"})
	b.AddMacro(netlist.MacroInst{Name: "m1", Model: mm, Group: "cpx"})
	return b
}

func TestFoldNatural(t *testing.T) {
	b := groupedBlock(t, 30)
	res, err := Fold(b, FoldOptions{Mode: FoldNatural, GroupDie: map[string]int{"pcx": 0, "cpx": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Is3D {
		t.Fatal("block not marked 3D")
	}
	for i := range b.Cells {
		want := netlist.DieBottom
		if b.Cells[i].Group == "cpx" {
			want = netlist.DieTop
		}
		if b.Cells[i].Die != want {
			t.Fatalf("cell %s on wrong die", b.Cells[i].Name)
		}
	}
	if b.Macros[0].Die != netlist.DieBottom || b.Macros[1].Die != netlist.DieTop {
		t.Error("macros must follow their groups")
	}
	if res.CutNets != 1 {
		t.Errorf("cut = %d, want 1 (the bridge)", res.CutNets)
	}
}

func TestFoldNaturalNeedsGroups(t *testing.T) {
	b := groupedBlock(t, 5)
	if _, err := Fold(b, FoldOptions{Mode: FoldNatural}); err == nil {
		t.Error("expected error without GroupDie")
	}
}

func TestFoldMinCutBalances(t *testing.T) {
	b := groupedBlock(t, 40)
	res, err := Fold(b, FoldOptions{Mode: FoldMinCut, BalanceTol: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := res.AreaPerDie[0] + res.AreaPerDie[1]
	frac := res.AreaPerDie[0] / total
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("area balance = %v", frac)
	}
	// Min-cut should find the bridge structure: cut stays small.
	if res.CutNets > 5 {
		t.Errorf("cut = %d, expected near 1", res.CutNets)
	}
}

func TestFoldSecondLevel(t *testing.T) {
	lib := tech.NewLibrary()
	b := netlist.NewBlock("spc", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 60, 60)
	r := rng.New(7)
	groups := []string{"exu", "lsu", "pmu", "gkt"}
	per := 25
	for _, g := range groups {
		for i := 0; i < per; i++ {
			b.AddCell(netlist.Instance{
				Name:   fmt.Sprintf("%s%d", g, i),
				Master: lib.MustCell(tech.NAND2, 2, tech.RVT),
				Group:  g,
				Pos:    geom.Point{X: r.Range(1, 55), Y: r.Range(1, 55)},
			})
		}
	}
	for gi := range groups {
		base := int32(gi * per)
		for i := 0; i < per-1; i++ {
			b.AddNet(netlist.Net{
				Name:   fmt.Sprintf("n%d_%d", gi, i),
				Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: base + int32(i)},
				Sinks:  []netlist.PinRef{{Kind: netlist.KindCell, Idx: base + int32(i+1)}},
			})
		}
	}
	_, err := Fold(b, FoldOptions{Mode: FoldSecondLevel, FoldGroups: []string{"exu", "lsu"}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Folded groups must span both dies; unfolded groups must not split.
	span := map[string][2]int{}
	for i := range b.Cells {
		s := span[b.Cells[i].Group]
		s[b.Cells[i].Die]++
		span[b.Cells[i].Group] = s
	}
	for _, g := range []string{"exu", "lsu"} {
		if span[g][0] == 0 || span[g][1] == 0 {
			t.Errorf("folded FUB %s not split: %v", g, span[g])
		}
	}
	for _, g := range []string{"pmu", "gkt"} {
		if span[g][0] != 0 && span[g][1] != 0 {
			t.Errorf("unfolded FUB %s was split: %v", g, span[g])
		}
	}
}

func TestFoldSecondLevelNeedsGroups(t *testing.T) {
	b := groupedBlock(t, 5)
	if _, err := Fold(b, FoldOptions{Mode: FoldSecondLevel}); err == nil {
		t.Error("expected error without FoldGroups")
	}
}

func TestInflateCutReachesTarget(t *testing.T) {
	b := groupedBlock(t, 40)
	res, err := Fold(b, FoldOptions{
		Mode: FoldNatural, GroupDie: map[string]int{"pcx": 0, "cpx": 1},
		InflateCutTo: 20, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets < 20 {
		t.Errorf("cut = %d, want >= 20", res.CutNets)
	}
}

func TestMovePortsWithLogic(t *testing.T) {
	b := groupedBlock(t, 10)
	// A port whose net sinks into cpx cells.
	p := b.AddPort(netlist.Port{Name: "pin", Dir: netlist.In})
	b.AddNet(netlist.Net{
		Name:   "pnet",
		Driver: netlist.PinRef{Kind: netlist.KindPort, Idx: p},
		Sinks: []netlist.PinRef{
			{Kind: netlist.KindCell, Idx: 1}, // pcx
			{Kind: netlist.KindCell, Idx: 2}, // pcx
		},
	})
	if _, err := Fold(b, FoldOptions{Mode: FoldNatural, GroupDie: map[string]int{"pcx": 1, "cpx": 0}}); err != nil {
		t.Fatal(err)
	}
	if b.Ports[p].Die != netlist.DieTop {
		t.Error("port did not follow its logic to the top die")
	}
}

func TestUnknownModeErrors(t *testing.T) {
	b := groupedBlock(t, 5)
	if _, err := Fold(b, FoldOptions{Mode: FoldMode(99)}); err == nil {
		t.Error("expected error for unknown mode")
	}
}
