package t2

import (
	"fmt"
	"math"

	"fold3d/internal/errs"
	"fold3d/internal/floorplan"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
	"fold3d/internal/tech"
)

// Config parameterizes the synthetic T2.
type Config struct {
	// Scale is the netlist scale factor: one modeled cell per Scale physical
	// cells (tech.ScaleModel).
	Scale float64
	// Seed drives all netlist randomness.
	Seed uint64
	// Only restricts generation to the named blocks (nil = all 46); block
	// experiments (CCX folding, L2T partition sweeps) use this to avoid
	// building the whole chip.
	Only []string
}

// DefaultConfig is the full-chip default used by the experiments.
func DefaultConfig() Config { return Config{Scale: 1000, Seed: 42} }

// Design is the generated T2 database.
type Design struct {
	Cfg     Config
	Lib     *tech.Library
	Scale   tech.ScaleModel
	Specs   map[string]BlockSpec
	Blocks  map[string]*netlist.Block
	Bundles []floorplan.Bundle
	// Levels holds the generator's logic level per cell (DAG rank), used to
	// keep port hookup acyclic.
	Levels map[string][]int16
	// free lists the reserved, still-unconnected cell inputs per block and
	// group, consumed by ConnectPorts.
	free map[string]map[string][]netlist.PinRef
}

// PortScale is the number of physical wires represented by one drawn chip
// port/wire. The drawn port population shrinks more slowly than the cell
// population (scale^0.25 rather than scale) because boundary pin counts
// follow Rent's rule, not block size; this keeps the port-budget coupling
// between chip-level and block-level timing representative.
func (d *Design) PortScale() float64 { return math.Pow(d.Cfg.Scale, 0.25) }

// DrawnBundles returns the bundle list with widths divided by PortScale,
// the sizes at which ports are actually created on the drawn netlists.
func (d *Design) DrawnBundles() []floorplan.Bundle {
	ps := d.PortScale()
	out := make([]floorplan.Bundle, len(d.Bundles))
	for i, b := range d.Bundles {
		b.Width = int(math.Ceil(float64(b.Width) / ps))
		if b.Width < 1 {
			b.Width = 1
		}
		out[i] = b
	}
	return out
}

// DrawnPortCount returns the expected number of drawn chip-level ports of a
// block (both directions), before AssignPorts has run — outline sizing needs
// it because port-heavy blocks (the crossbar above all) are wire- and
// repeater-dominated.
func (d *Design) DrawnPortCount(block string) int {
	ps := d.PortScale()
	n := 0
	for _, b := range d.Bundles {
		if b.A == block || b.B == block {
			w := int(math.Ceil(float64(b.Width) / ps))
			if w < 1 {
				w = 1
			}
			n += w
		}
	}
	return n
}

// MaxScale is the largest supported netlist scale factor: beyond one
// modeled cell per million physical cells every block collapses to its
// minimum size and the model carries no information.
const MaxScale = 1e6

// Generate builds the design database at the configured scale. Errors wrap
// errs.ErrBadOptions (scale outside [1, MaxScale], including NaN and Inf)
// and errs.ErrUnknownBlock (an Only entry naming no T2 block) so callers
// can classify with errors.Is.
func Generate(cfg Config) (*Design, error) {
	// The negated >=-&&-<= form rejects NaN too: every comparison against
	// NaN is false, so a bare `< 1` check would wave NaN straight through
	// into the geometry math.
	if !(cfg.Scale >= 1 && cfg.Scale <= MaxScale) {
		return nil, fmt.Errorf("t2: %w: scale must be in [1, %g], got %g",
			errs.ErrBadOptions, float64(MaxScale), cfg.Scale)
	}
	known := make(map[string]bool)
	for _, spec := range Blocks() {
		known[spec.Name] = true
	}
	for _, n := range cfg.Only {
		if !known[n] {
			return nil, fmt.Errorf("t2: %w: %q is not a T2 block", errs.ErrUnknownBlock, n)
		}
	}
	sm, err := tech.NewScaleModel(cfg.Scale)
	if err != nil {
		return nil, err
	}
	d := &Design{
		Cfg:     cfg,
		Lib:     tech.NewLibrary(),
		Scale:   sm,
		Specs:   make(map[string]BlockSpec),
		Blocks:  make(map[string]*netlist.Block),
		Bundles: Bundles(),
		Levels:  make(map[string][]int16),
		free:    make(map[string]map[string][]netlist.PinRef),
	}
	only := make(map[string]bool)
	for _, n := range cfg.Only {
		only[n] = true
	}
	r := rng.New(cfg.Seed)
	need := d.portSinkNeed()
	for _, spec := range Blocks() {
		d.Specs[spec.Name] = spec
		if len(only) > 0 && !only[spec.Name] {
			continue
		}
		blk, free, levels, err := d.generateBlock(spec, need[spec.Name], r.Split(spec.Name))
		if err != nil {
			return nil, fmt.Errorf("t2: generating %s: %v", spec.Name, err)
		}
		d.Blocks[spec.Name] = blk
		d.free[spec.Name] = free
		d.Levels[spec.Name] = levels
	}
	return d, nil
}

// portSinkNeed estimates how many reserved cell inputs each block group
// needs to absorb its incoming bundle wires (2 sinks per drawn wire, with
// 50% headroom).
func (d *Design) portSinkNeed() map[string]map[string]int {
	need := make(map[string]map[string]int)
	ps := d.PortScale()
	for _, b := range d.Bundles {
		w := int(math.Ceil(float64(b.Width) / ps))
		if need[b.B] == nil {
			need[b.B] = make(map[string]int)
		}
		need[b.B][b.GroupB] += w * 3
	}
	return need
}

// pickFamily draws a cell family from the synthesis mix.
func pickFamily(r *rng.R) tech.Family {
	// Weights: DFF 14, INV 16, NAND2 24, NOR2 14, AOI22 12, XOR2 8, MUX2 12.
	x := r.Intn(100)
	switch {
	case x < 14:
		return tech.DFF
	case x < 30:
		return tech.INV
	case x < 54:
		return tech.NAND2
	case x < 68:
		return tech.NOR2
	case x < 80:
		return tech.AOI22
	case x < 88:
		return tech.XOR2
	default:
		return tech.MUX2
	}
}

// pickDrive draws an as-synthesized drive strength.
func pickDrive(r *rng.R) int {
	x := r.Intn(100)
	switch {
	case x < 10:
		return 1
	case x < 45:
		return 2
	case x < 80:
		return 4
	case x < 95:
		return 8
	default:
		return 16
	}
}

// scaledMacro returns the macro model at drawn geometry: dimensions shrink
// with layout extent; per-macro energy and leakage divide by the scale so
// the report-time power multiplier restores physical magnitude (macro counts
// are not scaled); per-net pin capacitance stays physical.
func (d *Design) scaledMacro() tech.MacroModel {
	m := d.Lib.MacroKB
	sh := d.Scale.LinearShrink()
	m.Width /= sh
	m.Height /= sh
	m.LeakmW /= d.Cfg.Scale
	m.ReadEnergyFJ /= d.Cfg.Scale
	return m
}

// generateBlock synthesizes one block netlist.
func (d *Design) generateBlock(spec BlockSpec, need map[string]int, r *rng.R) (*netlist.Block, map[string][]netlist.PinRef, []int16, error) {
	b := netlist.NewBlock(spec.Name, spec.Clock)
	if spec.Kind == KindSPC {
		b.MaxRouteLayer = 9 // the SPC gets all nine metal layers (paper §2.2)
	}
	n := int(float64(spec.Cells) / d.Cfg.Scale)
	if n < 40 {
		n = 40
	}
	depth := spec.Depth
	if depth < 4 {
		depth = 8
	}

	groups := spec.Groups
	if len(groups) == 0 {
		groups = []GroupSpec{{Name: "", Frac: 1}}
	}

	// Cell creation with group and level assignment. Reserve the planned
	// counts up front: nets are created lazily one per driving pin, so the
	// cell count (plus macro/port slack) bounds them well.
	b.GrowCells(n + 8)
	b.GrowNets(n + 8)
	levels := make([]int16, 0, n)
	type glKey struct {
		g int
		l int16
	}
	byGL := make(map[glKey][]int32) // candidate drivers per (group, level)
	groupOf := make([]int, 0, n)
	created := 0
	for gi, g := range groups {
		gn := int(float64(n)*g.Frac + 0.5)
		if gi == len(groups)-1 {
			gn = n - created
		}
		if gn < 4 {
			gn = 4
		}
		for k := 0; k < gn; k++ {
			fam := pickFamily(r)
			master := d.Lib.MustCell(fam, pickDrive(r), tech.RVT)
			var lvl int16
			if fam == tech.DFF {
				lvl = 0
			} else {
				lvl = int16(1 + r.Intn(depth))
			}
			act := clampAct(r.Norm(spec.Activity, 0.06))
			idx := b.AddCell(netlist.Instance{
				Name:     fmt.Sprintf("%s_%s_c%d", spec.Name, g.Name, k),
				Master:   master,
				Group:    g.Name,
				Activity: act,
			})
			levels = append(levels, lvl)
			groupOf = append(groupOf, gi)
			byGL[glKey{gi, lvl}] = append(byGL[glKey{gi, lvl}], idx)
		}
		created += gn
	}

	// Macros: distributed round-robin over fold groups (or the single
	// anonymous group).
	macroModel := d.scaledMacro()
	var macroGroups []int
	for gi, g := range groups {
		if g.Fold || g.Name == "" {
			macroGroups = append(macroGroups, gi)
		}
	}
	if len(macroGroups) == 0 {
		macroGroups = []int{0}
	}
	for k := 0; k < spec.Macros; k++ {
		gi := macroGroups[k%len(macroGroups)]
		b.AddMacro(netlist.MacroInst{
			Name:     fmt.Sprintf("%s_m%d", spec.Name, k),
			Model:    macroModel,
			Group:    groups[gi].Name,
			Activity: 0.5,
			Fixed:    true,
		})
	}

	// Wiring. Nets are created lazily per driver.
	netOf := make(map[netlist.PinRef]int32)
	getNet := func(drv netlist.PinRef) *netlist.Net {
		if ni, ok := netOf[drv]; ok {
			return &b.Nets[ni]
		}
		ni := b.AddNet(netlist.Net{
			Name:     fmt.Sprintf("%s_n%d", spec.Name, len(b.Nets)),
			Kind:     netlist.Signal,
			Driver:   drv,
			Activity: clampAct(r.Norm(spec.Activity, 0.06)),
		})
		netOf[drv] = ni
		return &b.Nets[ni]
	}
	// pickDriver selects a DAG-safe driver for a sink at (group gi, level
	// lvl): same group, lower level, biased toward the previous level and a
	// small hub population (high-fanout control signals).
	pickDriver := func(gi int, lvl int16) (netlist.PinRef, bool) {
		for try := 0; try < 8; try++ {
			var dl int16
			if lvl > 1 && r.Bool(0.6) {
				dl = lvl - 1
			} else {
				dl = int16(r.Intn(int(lvl)))
			}
			cand := byGL[glKey{gi, dl}]
			if len(cand) == 0 {
				continue
			}
			var idx int32
			if r.Bool(0.08) {
				idx = cand[r.Intn(maxInt(1, (len(cand)+3)/4))] // hub bias
			} else {
				idx = cand[r.Intn(len(cand))]
			}
			return netlist.PinRef{Kind: netlist.KindCell, Idx: idx}, true
		}
		return netlist.PinRef{}, false
	}

	// Group-coupling policy. Isolated fold groups (CCX) get exactly
	// CrossNets explicit cross edges; loosely coupled groups (SPC FUBs)
	// cross with probability CrossFrac.
	isolated := spec.CrossNets > 0 || (len(groups) > 1 && spec.CrossFrac == 0)

	free := make(map[string][]netlist.PinRef)
	reserveLeft := make(map[int]int)
	for gi, g := range groups {
		reserveLeft[gi] = need[g.Name]
	}
	// Anonymous-group need applies to the whole block.
	anyNeed := need[""]

	for ci := range b.Cells {
		c := &b.Cells[ci]
		gi := groupOf[ci]
		lvl := levels[ci]
		nin := c.Master.Fam.NumInputs()
		nearCapture := !c.Master.Fam.IsSequential() && int(lvl) >= depth-3
		for pin := 0; pin < nin; pin++ {
			ref := netlist.PinRef{Kind: netlist.KindCell, Idx: int32(ci), Pin: int16(pin)}
			// Reserve inputs for port hookup — only near-capture cells, so
			// an arriving inter-block signal crosses at most a couple of
			// logic levels before its register (blocks register their I/O
			// closely; combinational feed-through across a block does not
			// exist in the real design).
			if nearCapture && reserveLeft[gi] > 0 && r.Bool(0.5) {
				free[groups[gi].Name] = append(free[groups[gi].Name], ref)
				reserveLeft[gi]--
				continue
			}
			if nearCapture && anyNeed > 0 && len(groups) > 1 && r.Bool(0.05) {
				free[""] = append(free[""], ref)
				anyNeed--
				continue
			}
			sg := gi
			if !isolated && len(groups) > 1 && r.Bool(spec.CrossFrac) {
				sg = r.Intn(len(groups))
			}
			var drvLvl int16
			if c.Master.Fam.IsSequential() {
				drvLvl = int16(depth) // D input captures from the deepest logic
			} else {
				drvLvl = lvl
			}
			if drvLvl == 0 {
				continue // level-0 DFFs' D inputs handled via depth above
			}
			drv, ok := pickDriver(sg, drvLvl)
			if !ok {
				continue
			}
			nn := getNet(drv)
			nn.Sinks = append(nn.Sinks, ref)
		}
	}

	// Explicit cross-group nets between the first two fold groups (CCX's
	// PCX/CPX share only clock and a few test signals).
	if spec.CrossNets > 0 && len(groups) >= 2 {
		for k := 0; k < spec.CrossNets; k++ {
			drv, ok1 := pickDriver(0, int16(depth))
			cand := byGL[glKey{1, int16(1 + r.Intn(depth))}]
			if !ok1 || len(cand) == 0 {
				continue
			}
			sink := netlist.PinRef{Kind: netlist.KindCell, Idx: cand[r.Intn(len(cand))], Pin: 0}
			nn := getNet(drv)
			nn.Sinks = append(nn.Sinks, sink)
		}
	}

	// Macro connectivity: each macro's outputs feed nearby logic, its
	// inputs are driven by deep logic of its group.
	for mi := range b.Macros {
		gi := 0
		for g := range groups {
			if groups[g].Name == b.Macros[mi].Group {
				gi = g
				break
			}
		}
		for k := 0; k < 6; k++ {
			// Macro output k drives 2 cells in the shallow levels: memory
			// read data flows through a couple of logic stages and leaves
			// for the consuming block (the L2 data path), so the macro
			// access time lands on the block-output cones. These synthesized
			// memories are what limit the paper's T2 to 500MHz (§3.2 fn.1).
			drv := netlist.PinRef{Kind: netlist.KindMacro, Idx: int32(mi), Pin: int16(k)}
			net := getNet(drv)
			for s := 0; s < 2; s++ {
				lo := 4
				if lo >= depth {
					lo = depth - 1
				}
				cand := byGL[glKey{gi, int16(lo + r.Intn(3))}]
				if len(cand) == 0 {
					continue
				}
				net.Sinks = append(net.Sinks, netlist.PinRef{Kind: netlist.KindCell, Idx: cand[r.Intn(len(cand))], Pin: 0})
			}
			if len(net.Sinks) == 0 {
				// Guarantee a sink so validation holds.
				if c := byGL[glKey{gi, 1}]; len(c) > 0 {
					net.Sinks = append(net.Sinks, netlist.PinRef{Kind: netlist.KindCell, Idx: c[0], Pin: 0})
				}
			}
		}
		for k := 0; k < 6; k++ {
			// Macro input k is driven by a deep cell.
			if drv, ok := pickDriver(gi, int16(depth)); ok {
				nn := getNet(drv)
				nn.Sinks = append(nn.Sinks,
					netlist.PinRef{Kind: netlist.KindMacro, Idx: int32(mi), Pin: int16(6 + k)})
			}
		}
	}

	// Drop zero-sink nets defensively (possible if a lazy net was created
	// and never got sinks — getNet always precedes a sink append, so this
	// should be a no-op; keep the netlist valid regardless).
	compactNets(b)
	if err := b.Validate(); err != nil {
		return nil, nil, nil, err
	}
	return b, free, levels, nil
}

func clampAct(a float64) float64 {
	if a < 0.02 {
		return 0.02
	}
	if a > 0.6 {
		return 0.6
	}
	return a
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// compactNets removes nets without sinks.
func compactNets(b *netlist.Block) {
	out := b.Nets[:0]
	for i := range b.Nets {
		if len(b.Nets[i].Sinks) > 0 {
			out = append(out, b.Nets[i])
		}
	}
	b.Nets = out
}
