package t2

import (
	"errors"
	"math"
	"strings"
	"testing"

	"fold3d/internal/errs"
	"fold3d/internal/floorplan"
	"fold3d/internal/netlist"
	"fold3d/internal/tech"
)

func TestBlockInventory(t *testing.T) {
	specs := Blocks()
	if len(specs) != 46 {
		t.Fatalf("block count = %d, want 46 (paper §2.1)", len(specs))
	}
	counts := map[string]int{}
	var totalCells int
	for _, s := range specs {
		switch {
		case strings.HasPrefix(s.Name, "SPC"):
			counts["SPC"]++
		case strings.HasPrefix(s.Name, "L2D"):
			counts["L2D"]++
		case strings.HasPrefix(s.Name, "L2T"):
			counts["L2T"]++
		case strings.HasPrefix(s.Name, "L2B"):
			counts["L2B"]++
		}
		totalCells += s.Cells
	}
	for _, k := range []string{"SPC", "L2D", "L2T", "L2B"} {
		if counts[k] != 8 {
			t.Errorf("%s count = %d, want 8", k, counts[k])
		}
	}
	// The T2 has ~500M transistors / ~7M cell instances; the inventory
	// should land in that regime.
	if totalCells < 5e6 || totalCells > 9e6 {
		t.Errorf("total cells = %d, want ~7M", totalCells)
	}
}

func TestSPCFUBs(t *testing.T) {
	fubs := SPCFUBs()
	if len(fubs) != 14 {
		t.Fatalf("FUB count = %d, want 14 (paper §4.5)", len(fubs))
	}
	folded := 0
	var frac float64
	for _, f := range fubs {
		if f.Fold {
			folded++
		}
		frac += f.Frac
	}
	if folded != 6 {
		t.Errorf("foldable FUBs = %d, want 6 (Figure 3)", folded)
	}
	if frac < 0.98 || frac > 1.02 {
		t.Errorf("FUB fractions sum to %v", frac)
	}
}

func TestBundlesReferenceKnownBlocks(t *testing.T) {
	known := map[string]bool{}
	for _, s := range Blocks() {
		known[s.Name] = true
	}
	for _, b := range Bundles() {
		if !known[b.A] || !known[b.B] {
			t.Errorf("bundle %s references unknown block", b.Name())
		}
		if b.Width <= 0 {
			t.Errorf("bundle %s has width %d", b.Name(), b.Width)
		}
	}
}

func TestGenerateValidity(t *testing.T) {
	d, err := Generate(Config{Scale: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Blocks) != 46 {
		t.Fatalf("generated %d blocks", len(d.Blocks))
	}
	for name, b := range d.Blocks {
		if err := b.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		if len(b.Cells) < 40 {
			t.Errorf("%s has only %d cells", name, len(b.Cells))
		}
		if len(d.Levels[name]) != len(b.Cells) {
			t.Errorf("%s level array mismatch", name)
		}
	}
	// Macro counts as specified.
	if len(d.Blocks["L2D0"].Macros) != 32 {
		t.Errorf("L2D0 macros = %d, want 32 (512KB as 16KB banks)", len(d.Blocks["L2D0"].Macros))
	}
	if d.Blocks["SPC0"].MaxRouteLayer != 9 {
		t.Error("SPC must route all nine metal layers (paper §2.2)")
	}
	if d.Blocks["CCX"].MaxRouteLayer != 7 {
		t.Error("non-SPC blocks route up to M7")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Scale: 1000, Seed: 9, Only: []string{"L2T0"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Scale: 1000, Seed: 9, Only: []string{"L2T0"}})
	if err != nil {
		t.Fatal(err)
	}
	ba, bb := a.Blocks["L2T0"], b.Blocks["L2T0"]
	if len(ba.Cells) != len(bb.Cells) || len(ba.Nets) != len(bb.Nets) {
		t.Fatal("generation is not deterministic")
	}
	for i := range ba.Nets {
		if ba.Nets[i].Name != bb.Nets[i].Name || len(ba.Nets[i].Sinks) != len(bb.Nets[i].Sinks) {
			t.Fatal("net structure differs between runs")
		}
	}
}

func TestScaleChangesSize(t *testing.T) {
	small, err := Generate(Config{Scale: 2000, Seed: 1, Only: []string{"CCX"}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(Config{Scale: 500, Seed: 1, Only: []string{"CCX"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Blocks["CCX"].Cells) <= len(small.Blocks["CCX"].Cells) {
		t.Error("smaller scale must give more cells")
	}
}

func TestCCXGroupIsolation(t *testing.T) {
	d, err := Generate(Config{Scale: 500, Seed: 3, Only: []string{"CCX"}})
	if err != nil {
		t.Fatal(err)
	}
	b := d.Blocks["CCX"]
	groupOf := func(r netlist.PinRef) string {
		switch r.Kind {
		case netlist.KindCell:
			return b.Cells[r.Idx].Group
		case netlist.KindMacro:
			return b.Macros[r.Idx].Group
		}
		return ""
	}
	cross := 0
	for i := range b.Nets {
		n := &b.Nets[i]
		g := groupOf(n.Driver)
		for _, s := range n.Sinks {
			sg := groupOf(s)
			if (g == "pcx" && sg == "cpx") || (g == "cpx" && sg == "pcx") {
				cross++
				break
			}
		}
	}
	// The paper's CCX needs only 4 signal TSVs: PCX and CPX share nothing
	// but clock and a few test signals.
	if cross > Blocks()[32].CrossNets+2 { // CCX spec
		t.Errorf("pcx-cpx cross nets = %d, want <= %d", cross, Blocks()[32].CrossNets)
	}
}

func TestGenerateBadScale(t *testing.T) {
	// Every rejected scale must wrap errs.ErrBadOptions and name the
	// allowed range, so callers (t2gen, the exp validator, the daemon's
	// 400 mapping) can classify it. NaN and the infinities are the
	// regression cases: a bare `< 1` comparison waves them through.
	for _, scale := range []float64{
		0, 0.5, -3, math.NaN(), math.Inf(1), math.Inf(-1), MaxScale * 10,
	} {
		_, err := Generate(Config{Scale: scale})
		if err == nil {
			t.Errorf("scale %g: expected error", scale)
			continue
		}
		if !errors.Is(err, errs.ErrBadOptions) {
			t.Errorf("scale %g: error %v does not wrap errs.ErrBadOptions", scale, err)
		}
		if !strings.Contains(err.Error(), "[1, 1e+06]") {
			t.Errorf("scale %g: error %q does not name the allowed range", scale, err)
		}
	}
	// Both range endpoints are valid.
	for _, scale := range []float64{1, MaxScale} {
		if _, err := Generate(Config{Scale: scale, Only: []string{"CCU"}}); err != nil {
			t.Errorf("scale %g: unexpected error %v", scale, err)
		}
	}
}

func TestRowsCoverAllBlocks(t *testing.T) {
	for _, style := range []Style{Style2D, StyleCoreCache, StyleCoreCore, StyleFoldF2B, StyleFoldF2F} {
		rows := Rows(style)
		seen := map[string]bool{}
		for die := 0; die < 2; die++ {
			for _, r := range rows[die] {
				for _, n := range r.Names {
					if seen[n] {
						t.Errorf("%s: block %s placed twice", style, n)
					}
					seen[n] = true
				}
			}
		}
		for _, s := range Blocks() {
			if !seen[s.Name] {
				t.Errorf("%s: block %s missing from the plan", style, s.Name)
			}
		}
	}
}

func TestStyleProperties(t *testing.T) {
	if Style2D.Is3D() || !StyleCoreCache.Is3D() {
		t.Error("Is3D wrong")
	}
	if StyleCoreCache.Folded() || !StyleFoldF2F.Folded() {
		t.Error("Folded wrong")
	}
	if !FoldedInStyle(StyleFoldF2B, "SPC3") || FoldedInStyle(StyleFoldF2B, "NCU") {
		t.Error("FoldedInStyle wrong")
	}
	if FoldedInStyle(Style2D, "SPC3") {
		t.Error("nothing folds in 2D")
	}
	for _, ty := range FoldedBlockTypes {
		if ty != "SPC" && ty != "CCX" && ty != "L2D" && ty != "L2T" && ty != "MAC" {
			t.Errorf("unexpected folded type %s", ty)
		}
	}
}

func TestConnectPortsWiresEverything(t *testing.T) {
	d, err := Generate(Config{Scale: 1000, Seed: 5, Only: []string{"CCX", "NCU"}})
	if err != nil {
		t.Fatal(err)
	}
	// Build a tiny floorplan covering all blocks via spec shapes.
	shapes := map[string]floorplan.Shape{}
	for name := range d.Specs {
		shapes[name] = floorplan.Shape{Name: name, W: 50, H: 40}
	}
	fp, err := floorplan.RowPlan(shapes, Rows(Style2D), 3)
	if err != nil {
		t.Fatal(err)
	}
	nets, err := floorplan.AssignPorts(d.Blocks, fp, d.DrawnBundles())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ConnectPorts(nets); err != nil {
		t.Fatal(err)
	}
	// Every present-side port must now be wired into a net.
	for _, name := range []string{"CCX", "NCU"} {
		b := d.Blocks[name]
		wired := map[int32]bool{}
		for i := range b.Nets {
			n := &b.Nets[i]
			if n.Driver.Kind == netlist.KindPort {
				wired[n.Driver.Idx] = true
			}
			for _, s := range n.Sinks {
				if s.Kind == netlist.KindPort {
					wired[s.Idx] = true
				}
			}
		}
		for i := range b.Ports {
			if !wired[int32(i)] {
				t.Errorf("%s port %s not wired", name, b.Ports[i].Name)
			}
		}
		if err := b.Validate(); err != nil {
			t.Errorf("%s invalid after hookup: %v", name, err)
		}
	}
}

func TestDrawnBundlesAndPortScale(t *testing.T) {
	d, err := Generate(Config{Scale: 1000, Seed: 1, Only: []string{"NCU"}})
	if err != nil {
		t.Fatal(err)
	}
	if d.PortScale() <= 1 {
		t.Errorf("PortScale = %v", d.PortScale())
	}
	for i, b := range d.DrawnBundles() {
		if b.Width < 1 {
			t.Errorf("drawn bundle %d width %d", i, b.Width)
		}
		if b.Width > d.Bundles[i].Width {
			t.Error("drawn width exceeds physical width")
		}
	}
	if d.DrawnPortCount("CCX") <= d.DrawnPortCount("NCU") {
		t.Error("the crossbar must have the most ports")
	}
}

func TestClockDomainsInSpecs(t *testing.T) {
	for _, s := range Blocks() {
		if s.Kind == KindNIU && s.Clock != tech.IOClock {
			t.Errorf("%s: NIU blocks run on the IO clock", s.Name)
		}
		if s.Kind == KindSPC && s.Clock != tech.CPUClock {
			t.Errorf("%s: cores run on the CPU clock", s.Name)
		}
	}
}
