// Package t2 synthesizes an OpenSPARC-T2-like design database: 46
// floorplanned blocks (8 SPARC cores, 8 L2 data banks, 8 L2 tags, 8 L2 miss
// buffers, the cache crossbar, the network interface unit, memory
// controllers and control units) with per-block cell/macro budgets, internal
// group structure (the CCX's PCX/CPX halves, the SPC's 14 FUBs) and the
// chip-level wire bundles between blocks. The netlists are statistically
// matched to the paper's Table 3 profile rather than logically equivalent to
// the real T2 (DESIGN.md §2): what the study needs from the benchmark is its
// block-statistics shape — net-power fractions, long-wire populations, macro
// dominance and the crossbar's port-driven fragmentation.
package t2

import (
	"fmt"

	"fold3d/internal/floorplan"
	"fold3d/internal/tech"
)

// Kind classifies a block.
type Kind int

const (
	// KindSPC is a SPARC physical core.
	KindSPC Kind = iota
	// KindL2D is an L2 cache data bank (512KB as 32 x 16KB macros).
	KindL2D
	// KindL2T is an L2 cache tag array.
	KindL2T
	// KindL2B is an L2 miss buffer.
	KindL2B
	// KindCCX is the cache crossbar (PCX + CPX halves).
	KindCCX
	// KindNIU is a network-interface-unit block (MAC, RDP, TDS, RTX).
	KindNIU
	// KindCtl is a control/IO block (NCU, CCU, DMU, SII, SIO, MCU).
	KindCtl
)

// GroupSpec is one internal instance group (FUB or crossbar half).
type GroupSpec struct {
	Name string
	// Frac is the share of the block's cells in this group.
	Frac float64
	// Fold marks groups selected for second-level folding (SPC FUBs).
	Fold bool
}

// BlockSpec characterizes one block for the generator.
type BlockSpec struct {
	Name   string
	Kind   Kind
	Cells  int // physical (unscaled) standard-cell count
	Macros int // 16KB memory macro count
	Clock  tech.ClockDomain
	// Activity is the mean switching activity of the block's signal nets.
	Activity float64
	// Depth is the logic depth (levels) of the generated DAG.
	Depth int
	// Aspect is the preferred outline aspect ratio (W/H).
	Aspect float64
	// Groups partitions the cells; empty means one anonymous group.
	Groups []GroupSpec
	// CrossNets is the number of nets allowed to cross between groups when
	// the block's groups are otherwise isolated (the CCX's PCX and CPX halves
	// share nothing but clock and a few test signals — 4 nets in the paper).
	CrossNets int
	// CrossFrac is the fraction of sinks that may pick cross-group drivers
	// when groups are loosely coupled (SPC FUBs).
	CrossFrac float64
}

// SPCFUBs is the SPARC core's functional-unit-block structure: 14 FUBs, of
// which the six large ones (paper Figure 3) are second-level folding
// candidates.
func SPCFUBs() []GroupSpec {
	return []GroupSpec{
		{Name: "exu0", Frac: 0.09, Fold: true},
		{Name: "exu1", Frac: 0.09, Fold: true},
		{Name: "fgu", Frac: 0.14, Fold: true},
		{Name: "lsu", Frac: 0.13, Fold: true},
		{Name: "tlu", Frac: 0.11, Fold: true},
		{Name: "ifu_ftu", Frac: 0.10, Fold: true},
		{Name: "ifu_cmu", Frac: 0.06},
		{Name: "ifu_ibu", Frac: 0.05},
		{Name: "mmu", Frac: 0.06},
		{Name: "pku", Frac: 0.04},
		{Name: "dec", Frac: 0.04},
		{Name: "gkt", Frac: 0.03},
		{Name: "pmu", Frac: 0.03},
		{Name: "misc", Frac: 0.03},
	}
}

// Blocks returns the 46-block T2 inventory (SerDes, eFuse and misc I/O are
// already dropped, and the CCU's PLL is an ideal clock source, per §2.1).
func Blocks() []BlockSpec {
	var specs []BlockSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, BlockSpec{
			Name: fmt.Sprintf("SPC%d", i), Kind: KindSPC,
			Cells: 550000, Macros: 6, Clock: tech.CPUClock,
			Activity: 0.20, Depth: 14, Aspect: 1.25,
			Groups: SPCFUBs(), CrossFrac: 0.15,
		})
	}
	for i := 0; i < 8; i++ {
		specs = append(specs, BlockSpec{
			Name: fmt.Sprintf("L2D%d", i), Kind: KindL2D,
			Cells: 60000, Macros: 32, Clock: tech.CPUClock,
			Activity: 0.13, Depth: 8, Aspect: 0.88,
			// The 512KB bank divides into four logical sub-banks of eight
			// 16KB macros each (paper §4.4); folding places two sub-banks
			// per die.
			Groups: []GroupSpec{
				{Name: "bank0", Frac: 0.22, Fold: true},
				{Name: "bank1", Frac: 0.22, Fold: true},
				{Name: "bank2", Frac: 0.22, Fold: true},
				{Name: "bank3", Frac: 0.22, Fold: true},
				{Name: "ctl", Frac: 0.12},
			},
			CrossFrac: 0.08,
		})
	}
	for i := 0; i < 8; i++ {
		specs = append(specs, BlockSpec{
			Name: fmt.Sprintf("L2T%d", i), Kind: KindL2T,
			Cells: 80000, Macros: 8, Clock: tech.CPUClock,
			Activity: 0.16, Depth: 10, Aspect: 0.63,
		})
	}
	for i := 0; i < 8; i++ {
		specs = append(specs, BlockSpec{
			Name: fmt.Sprintf("L2B%d", i), Kind: KindL2B,
			Cells: 25000, Macros: 2, Clock: tech.CPUClock,
			Activity: 0.12, Depth: 8, Aspect: 1.0,
		})
	}
	specs = append(specs, BlockSpec{
		Name: "CCX", Kind: KindCCX,
		Cells: 340000, Macros: 0, Clock: tech.CPUClock,
		Activity: 0.22, Depth: 8, Aspect: 3.0,
		Groups: []GroupSpec{
			{Name: "pcx", Frac: 0.48, Fold: true},
			{Name: "cpx", Frac: 0.48, Fold: true},
			{Name: "glue", Frac: 0.04},
		},
		CrossNets: 4, // clock and a few test signals only (paper §4.3)
	})
	niu := func(name string, cells int) BlockSpec {
		return BlockSpec{
			Name: name, Kind: KindNIU,
			Cells: cells, Macros: 2, Clock: tech.IOClock,
			Activity: 0.18, Depth: 10, Aspect: 1.4,
		}
	}
	specs = append(specs,
		niu("MAC", 280000),
		niu("RDP", 130000),
		niu("TDS", 100000),
		niu("RTX", 90000),
	)
	ctl := func(name string, cells, macros int, clk tech.ClockDomain) BlockSpec {
		return BlockSpec{
			Name: name, Kind: KindCtl,
			Cells: cells, Macros: macros, Clock: clk,
			Activity: 0.12, Depth: 9, Aspect: 1.0,
		}
	}
	specs = append(specs,
		ctl("NCU", 60000, 0, tech.CPUClock),
		ctl("CCU", 20000, 0, tech.CPUClock),
		ctl("DMU", 70000, 0, tech.IOClock),
		ctl("SII", 50000, 0, tech.IOClock),
		ctl("SIO", 50000, 0, tech.IOClock),
		ctl("MCU0", 45000, 2, tech.CPUClock),
		ctl("MCU1", 45000, 2, tech.CPUClock),
		ctl("MCU2", 45000, 2, tech.CPUClock),
		ctl("MCU3", 45000, 2, tech.CPUClock),
	)
	return specs
}

// FoldedBlockTypes are the five block types the paper folds (§6.1).
var FoldedBlockTypes = []string{"SPC", "CCX", "L2D", "L2T", "MAC"}

// Bundles returns the chip-level wire bundles (physical wire counts). The
// crossbar traffic is the backbone: each SPC exchanges ~300 wires with the
// CCX (half into PCX, half out of CPX), and each L2 data bank likewise.
func Bundles() []floorplan.Bundle {
	var bs []floorplan.Bundle
	add := func(a, b string, w int, ga, gb string, act float64) {
		bs = append(bs, floorplan.Bundle{A: a, B: b, Width: w, GroupA: ga, GroupB: gb, Activity: act})
	}
	for i := 0; i < 8; i++ {
		spc := fmt.Sprintf("SPC%d", i)
		l2d := fmt.Sprintf("L2D%d", i)
		l2t := fmt.Sprintf("L2T%d", i)
		l2b := fmt.Sprintf("L2B%d", i)
		mcu := fmt.Sprintf("MCU%d", i/2)
		add(spc, "CCX", 150, "lsu", "pcx", 0.18)
		add("CCX", spc, 150, "cpx", "ifu_ftu", 0.18)
		add("CCX", l2d, 150, "pcx", "", 0.16)
		add(l2d, "CCX", 150, "", "cpx", 0.16)
		add(l2t, l2d, 120, "", "", 0.14)
		add(l2t, l2b, 60, "", "", 0.10)
		add(l2d, mcu, 100, "", "", 0.12)
		add("NCU", spc, 20, "", "mmu", 0.08)
	}
	// Network interface unit: almost all MAC signals stay within the NIU
	// cluster (paper §6.1).
	add("MAC", "RTX", 200, "", "", 0.18)
	add("MAC", "TDS", 200, "", "", 0.18)
	add("RDP", "MAC", 200, "", "", 0.18)
	add("TDS", "SIO", 80, "", "", 0.14)
	add("SII", "RDP", 80, "", "", 0.14)
	add("MAC", "NCU", 40, "", "", 0.08)
	// Control fabric.
	add("NCU", "DMU", 60, "", "", 0.08)
	add("DMU", "SII", 60, "", "", 0.10)
	add("SIO", "DMU", 60, "", "", 0.10)
	add("CCU", "NCU", 16, "", "", 0.05)
	return bs
}
