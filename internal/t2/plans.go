package t2

import (
	"fmt"

	"fold3d/internal/floorplan"
)

// Style enumerates the five full-chip design styles of the paper's Figure 8.
type Style int

const (
	// Style2D is the flat baseline following the original T2 floorplan.
	Style2D Style = iota
	// StyleCoreCache stacks all cores on one die and the cache/rest on the
	// other (Figure 8b).
	StyleCoreCache
	// StyleCoreCore puts four cores plus their L2 slices on each die
	// (Figure 8c).
	StyleCoreCore
	// StyleFoldF2B folds SPC/CCX/L2D/L2T/MAC across both dies with TSVs
	// (Figure 8d).
	StyleFoldF2B
	// StyleFoldF2F folds the same five block types with F2F vias
	// (Figure 8e).
	StyleFoldF2F
)

// String names the design style as the paper labels it.
func (s Style) String() string {
	switch s {
	case Style2D:
		return "2D"
	case StyleCoreCache:
		return "core/cache"
	case StyleCoreCore:
		return "core/core"
	case StyleFoldF2B:
		return "fold-F2B"
	case StyleFoldF2F:
		return "fold-F2F"
	}
	return fmt.Sprintf("Style(%d)", int(s))
}

// Is3D reports whether the style is a two-die stack.
func (s Style) Is3D() bool { return s != Style2D }

// Folded reports whether the style folds blocks.
func (s Style) Folded() bool { return s == StyleFoldF2B || s == StyleFoldF2F }

// row builds a floorplan row.
func row(names ...string) floorplan.Row { return floorplan.Row{Names: names} }

func seq(prefix string, from, to int) []string {
	var out []string
	for i := from; i <= to; i++ {
		out = append(out, fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// Rows returns the per-die user-defined row plan of the style (bottom row
// first, die 0 then die 1), mirroring the arrangements of Figure 8: SPCs on
// the chip's top and bottom edges, L2 arrays inside them, CCX and the
// control units in the center row, and the NIU cluster at the chip bottom.
func Rows(style Style) [2][]floorplan.Row {
	switch style {
	case Style2D:
		return [2][]floorplan.Row{{
			row("MAC", "RTX", "TDS", "RDP", "SII", "SIO"),
			row(seq("SPC", 4, 7)...),
			row("L2D4", "L2T4", "L2T5", "L2D5", "L2D6", "L2T6", "L2T7", "L2D7"),
			row("MCU0", "L2B4", "L2B5", "L2B0", "NCU", "CCX", "CCU", "L2B1", "L2B6", "L2B7", "MCU1"),
			row("L2D0", "L2T0", "L2T1", "L2D1", "L2D2", "L2T2", "L2T3", "L2D3"),
			row(seq("SPC", 0, 3)...),
			row("MCU2", "MCU3", "L2B2", "L2B3", "DMU"),
		}, nil}
	case StyleCoreCache:
		// Die 0: caches, memory controllers, NIU. Die 1: cores, crossbar,
		// control.
		return [2][]floorplan.Row{
			{
				row("MAC", "RTX", "TDS", "RDP"),
				row("L2D4", "L2D5", "L2T4", "L2T5", "L2T6", "L2T7", "L2D6", "L2D7"),
				row("MCU0", "L2B4", "L2B5", "L2B0", "L2B1", "L2B2", "L2B3", "L2B6", "L2B7", "MCU1"),
				row("L2D0", "L2D1", "L2T0", "L2T1", "L2T2", "L2T3", "L2D2", "L2D3"),
				row("MCU2", "MCU3", "SII", "SIO"),
			},
			{
				row(seq("SPC", 4, 7)...),
				row("NCU", "CCX", "CCU"),
				row(seq("SPC", 0, 3)...),
				row("DMU"),
			},
		}
	case StyleCoreCore:
		// Four cores plus their L2 slices per die; CCX spans the center of
		// die 0 (its partner ports cross dies).
		return [2][]floorplan.Row{
			{
				row("MAC", "RTX", "TDS", "RDP"),
				row(seq("SPC", 0, 3)...),
				row("L2D0", "L2T0", "L2T1", "L2D1", "L2D2", "L2T2", "L2T3", "L2D3"),
				row("MCU0", "L2B0", "L2B1", "NCU", "CCX", "L2B2", "L2B3", "MCU1"),
			},
			{
				row("SII", "SIO", "DMU"),
				row(seq("SPC", 4, 7)...),
				row("L2D4", "L2T4", "L2T5", "L2D5", "L2D6", "L2T6", "L2T7", "L2D7"),
				row("MCU2", "L2B4", "L2B5", "CCU", "L2B6", "L2B7", "MCU3"),
			},
		}
	case StyleFoldF2B, StyleFoldF2F:
		// Folded blocks (SPC, CCX, L2D, L2T, MAC) occupy both dies; the
		// rest splits across dies. SPCs sit on the chip's top and bottom
		// edges (under F2B their two routing-layer profiles would otherwise
		// block over-the-block routes, §6.1); CCX is dead center.
		return [2][]floorplan.Row{
			{
				row("MAC", "RTX", "TDS", "RDP"),
				row(seq("SPC", 4, 7)...),
				row("L2D4", "L2T4", "L2T5", "L2D5", "L2D6", "L2T6", "L2T7", "L2D7"),
				row("L2B4", "L2B5", "NCU", "CCX", "CCU", "L2B6", "L2B7"),
				row("L2D0", "L2T0", "L2T1", "L2D1", "L2D2", "L2T2", "L2T3", "L2D3"),
				row(seq("SPC", 0, 3)...),
				row("MCU0", "MCU1", "SII", "SIO", "DMU", "MCU2", "MCU3"),
			},
			{
				row("L2B0", "L2B1", "L2B2", "L2B3"),
			}, // unfolded leftovers on die 1; folded blocks mirror both dies
		}
	}
	return [2][]floorplan.Row{}
}

// FoldedInStyle reports whether a block is folded under the style.
func FoldedInStyle(style Style, name string) bool {
	if !style.Folded() {
		return false
	}
	for _, prefix := range FoldedBlockTypes {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// DieOfBlock returns the die a block lives on under a non-folded 3D style
// (derived from the plan rows). Folded blocks return DieBottom with both=
// true.
func PlanShapeDies(style Style) map[string]int {
	rows := Rows(style)
	out := make(map[string]int)
	for die := 0; die < 2; die++ {
		for _, r := range rows[die] {
			for _, n := range r.Names {
				out[n] = die
			}
		}
	}
	return out
}
