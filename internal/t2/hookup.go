package t2

import (
	"fmt"
	"sort"

	"fold3d/internal/floorplan"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
	"fold3d/internal/tech"
)

// ConnectPorts wires the chip-level ports (created on the blocks by
// floorplan.AssignPorts) into the block netlists: an output port becomes an
// extra sink of a net driven deep in the bundle's source group; an input
// port drives a new net whose sinks are cell inputs reserved for it during
// generation. The group targeting is what gives the CCX its paper behaviour:
// SPC-facing ports attach to PCX logic and L2-facing return ports to CPX
// logic, so the 2D placement tears each half toward its partners (§4.3).
//
// Leftover reserved inputs are tied to level-0-driven nets (registers and
// macro outputs), keeping the DAG property STA depends on.
func (d *Design) ConnectPorts(chipNets []floorplan.ChipNet) error {
	byName := make(map[string]floorplan.Bundle, len(d.Bundles))
	for _, b := range d.Bundles {
		byName[b.Name()] = b
	}
	r := rng.New(d.Cfg.Seed).Split("hookup")

	// Per-block caches.
	type cache struct {
		driverNet map[int32]int32 // cell -> net it drives
		// shallowCells are combinational cells a handful of levels past the
		// launching registers (and, in memory blocks, one stage past the
		// macro read-outs): block outputs tap these, so an outgoing
		// inter-block signal leaves a few stages after its register or
		// memory access — which is exactly where the paper's slow
		// synthesized memories make the 2D design frequency-limited.
		shallowCells map[string][]int32
		// deepCells are near-capture cells, the fallback sinks for inputs.
		deepCells map[string][]int32
	}
	caches := make(map[string]*cache)
	getCache := func(name string) (*cache, error) {
		if c, ok := caches[name]; ok {
			return c, nil
		}
		b, ok := d.Blocks[name]
		if !ok {
			return nil, fmt.Errorf("t2: hookup references unknown block %q", name)
		}
		c := &cache{
			driverNet:    make(map[int32]int32),
			shallowCells: make(map[string][]int32),
			deepCells:    make(map[string][]int32),
		}
		for ni := range b.Nets {
			n := &b.Nets[ni]
			if n.Kind == netlist.Signal && n.Driver.Kind == netlist.KindCell {
				c.driverNet[n.Driver.Idx] = int32(ni)
			}
		}
		lv := d.Levels[name]
		depth := int16(d.Specs[name].Depth)
		if depth < 4 {
			depth = 8
		}
		for ci := range b.Cells {
			if b.Cells[ci].Master.Fam.IsSequential() {
				continue
			}
			g := b.Cells[ci].Group
			if lv[ci] >= 4 && lv[ci] <= 6 {
				c.shallowCells[g] = append(c.shallowCells[g], int32(ci))
			}
			if lv[ci] >= depth-3 {
				c.deepCells[g] = append(c.deepCells[g], int32(ci))
			}
		}
		return c, nil
	}
	anyCells := func(m map[string][]int32, group string) []int32 {
		cells := m[group]
		if len(cells) == 0 {
			// Deterministic fallback: first non-empty group by name.
			var names []string
			for g := range m {
				names = append(names, g)
			}
			sort.Strings(names)
			for _, g := range names {
				if len(m[g]) > 0 {
					cells = m[g]
					break
				}
			}
		}
		return cells
	}

	for i := range chipNets {
		cn := &chipNets[i]
		bu, ok := byName[cn.Bundle]
		if !ok {
			return fmt.Errorf("t2: hookup: unknown bundle %q", cn.Bundle)
		}
		// --- A side: output port is a sink of an internal net. ---
		// A negative port index marks an absent partner block in a
		// block-level experiment; that side is simply not wired.
		if cn.A.Port >= 0 {
			ba := d.Blocks[cn.A.Block]
			ca, err := getCache(cn.A.Block)
			if err != nil {
				return err
			}
			caches[cn.A.Block] = ca
			cells := anyCells(ca.shallowCells, bu.GroupA)
			if len(cells) == 0 {
				return fmt.Errorf("t2: block %s has no candidate drivers for bundle %s", cn.A.Block, cn.Bundle)
			}
			drvCell := cells[r.Intn(len(cells))]
			portRef := netlist.PinRef{Kind: netlist.KindPort, Idx: cn.A.Port}
			if ni, ok := ca.driverNet[drvCell]; ok {
				ba.Nets[ni].Sinks = append(ba.Nets[ni].Sinks, portRef)
			} else {
				ni := ba.AddNet(netlist.Net{
					Name:     fmt.Sprintf("%s_out%d", cn.Bundle, i),
					Kind:     netlist.Signal,
					Driver:   netlist.PinRef{Kind: netlist.KindCell, Idx: drvCell},
					Sinks:    []netlist.PinRef{portRef},
					Activity: bundleAct(bu),
				})
				ca.driverNet[drvCell] = ni
			}
		}

		// --- B side: input port drives reserved inputs. ---
		if cn.B.Port >= 0 {
			bb := d.Blocks[cn.B.Block]
			cb, err := getCache(cn.B.Block)
			if err != nil {
				return err
			}
			caches[cn.B.Block] = cb
			sinks := d.popFree(cn.B.Block, bu.GroupB, 2, r)
			if len(sinks) == 0 {
				// No reserved inputs left: land on a deep cell's input pin;
				// the netlist model tolerates a doubly-driven input (it only
				// adds pin load and a timing arc).
				cells := anyCells(cb.deepCells, bu.GroupB)
				if len(cells) == 0 {
					return fmt.Errorf("t2: block %s has no candidate sinks for bundle %s", cn.B.Block, cn.Bundle)
				}
				sinks = []netlist.PinRef{{Kind: netlist.KindCell, Idx: cells[r.Intn(len(cells))], Pin: 0}}
			}
			bb.AddNet(netlist.Net{
				Name:     fmt.Sprintf("%s_in%d", cn.Bundle, i),
				Kind:     netlist.Signal,
				Driver:   netlist.PinRef{Kind: netlist.KindPort, Idx: cn.B.Port},
				Sinks:    sinks,
				Activity: bundleAct(bu),
			})
		}
	}

	// Tie leftover reserved inputs to level-0-driven nets (DAG-safe),
	// in deterministic block order.
	var freeNames []string
	for name := range d.free {
		freeNames = append(freeNames, name)
	}
	sort.Strings(freeNames)
	for _, name := range freeNames {
		groups := d.free[name]
		b := d.Blocks[name]
		var l0nets []int32
		for ni := range b.Nets {
			n := &b.Nets[ni]
			if n.Kind != netlist.Signal {
				continue
			}
			switch n.Driver.Kind {
			case netlist.KindMacro:
				l0nets = append(l0nets, int32(ni))
			case netlist.KindCell:
				if b.Cells[n.Driver.Idx].Master.Fam == tech.DFF {
					l0nets = append(l0nets, int32(ni))
				}
			}
		}
		if len(l0nets) == 0 {
			continue
		}
		var gnames []string
		for g := range groups {
			gnames = append(gnames, g)
		}
		sort.Strings(gnames)
		for _, g := range gnames {
			for _, ref := range groups[g] {
				ni := l0nets[r.Intn(len(l0nets))]
				b.Nets[ni].Sinks = append(b.Nets[ni].Sinks, ref)
			}
			groups[g] = nil
		}
	}

	for name, b := range d.Blocks {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("t2: after hookup, block %s: %v", name, err)
		}
	}
	return nil
}

// popFree removes and returns up to k reserved inputs of the given group
// (falling back to the anonymous group, then any group).
func (d *Design) popFree(block, group string, k int, r *rng.R) []netlist.PinRef {
	groups := d.free[block]
	if groups == nil {
		return nil
	}
	take := func(g string) []netlist.PinRef {
		lst := groups[g]
		if len(lst) == 0 {
			return nil
		}
		if k > len(lst) {
			k = len(lst)
		}
		out := append([]netlist.PinRef(nil), lst[len(lst)-k:]...)
		groups[g] = lst[:len(lst)-k]
		return out
	}
	if out := take(group); out != nil {
		return out
	}
	if group != "" {
		if out := take(""); out != nil {
			return out
		}
	}
	// Deterministic fallback order.
	var names []string
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	for _, g := range names {
		if out := take(g); out != nil {
			return out
		}
	}
	return nil
}

func bundleAct(b floorplan.Bundle) float64 {
	if b.Activity > 0 {
		return b.Activity
	}
	return 0.12
}
