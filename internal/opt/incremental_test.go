package opt

import (
	"fmt"
	"testing"

	"fold3d/internal/extract"
	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
	"fold3d/internal/sta"
	"fold3d/internal/tech"
)

// randomDAG builds a random layered netlist: an input port, a rank of
// launching DFFs, a few ranks of combinational gates with random fan-in
// and fan-out across ranks, and a capturing DFF rank plus an output port.
// One net carries a die crossing so the TSV parasitics path is exercised.
func randomDAG(t *testing.T, lib *tech.Library, r *rng.R) *netlist.Block {
	t.Helper()
	b := netlist.NewBlock("rnd", tech.CPUClock)
	span := 300 + r.Range(0, 200)
	b.Outline[0] = geom.NewRect(0, 0, span, 120)
	fams := []tech.Family{tech.INV, tech.BUF, tech.NAND2, tech.NOR2, tech.AOI22}

	cell := func(name string, fam tech.Family, drive int, x, y float64) int32 {
		return b.AddCell(netlist.Instance{
			Name:   name,
			Master: lib.MustCell(fam, drive, tech.RVT),
			Pos:    geom.Point{X: x, Y: y},
		})
	}
	ref := func(ci int32) netlist.PinRef { return netlist.PinRef{Kind: netlist.KindCell, Idx: ci} }

	// Launch rank.
	nLaunch := 2 + r.Intn(3)
	var prev []int32
	for i := 0; i < nLaunch; i++ {
		prev = append(prev, cell(fmt.Sprintf("lff%d", i), tech.DFF, 2, 2, 4+10*float64(i)))
	}
	pin := b.AddPort(netlist.Port{Name: "in", Pos: geom.Point{X: 0, Y: 60}, CapfF: 2})
	pout := b.AddPort(netlist.Port{Name: "out", Pos: geom.Point{X: span, Y: 60}, Budget: 150})

	// Combinational ranks: each gate picks a random driver from the
	// previous rank; each driver's net fans out to every gate that chose it.
	ranks := 3 + r.Intn(3)
	netC := 0
	for rank := 0; rank < ranks; rank++ {
		x := span * float64(rank+1) / float64(ranks+2)
		width := 2 + r.Intn(4)
		var cur []int32
		sinksOf := make([][]netlist.PinRef, len(prev))
		for g := 0; g < width; g++ {
			fam := fams[r.Intn(len(fams))]
			ci := cell(fmt.Sprintf("g%d_%d", rank, g), fam, []int{2, 4}[r.Intn(2)], x, 4+12*float64(g)+r.Range(0, 6))
			cur = append(cur, ci)
			sinksOf[r.Intn(len(prev))] = append(sinksOf[r.Intn(len(prev))], ref(ci))
		}
		for di, sinks := range sinksOf {
			if len(sinks) == 0 {
				continue
			}
			netC++
			n := netlist.Net{
				Name:   fmt.Sprintf("n%d", netC),
				Kind:   netlist.Signal,
				Driver: ref(prev[di]),
				Sinks:  sinks,
			}
			if rank == 1 && di == 0 {
				n.Crossings = 1 // one TSV-crossing net per block
			}
			b.AddNet(n)
		}
		// Drivers nobody picked still need their output hooked somewhere:
		// give them the first gate of the new rank as a sink.
		for di := range prev {
			if len(sinksOf[di]) == 0 {
				netC++
				b.AddNet(netlist.Net{
					Name:   fmt.Sprintf("n%d", netC),
					Kind:   netlist.Signal,
					Driver: ref(prev[di]),
					Sinks:  []netlist.PinRef{ref(cur[0])},
				})
			}
		}
		prev = cur
	}

	// Capture rank: every remaining driver lands on a DFF; one also feeds
	// the output port, and the input port feeds the first rank-0 gate's
	// DFF replacement path via a dedicated capture DFF.
	for i, ci := range prev {
		cff := cell(fmt.Sprintf("cff%d", i), tech.DFF, 2, span-4, 4+10*float64(i))
		sinks := []netlist.PinRef{{Kind: netlist.KindCell, Idx: cff}}
		if i == 0 {
			sinks = append(sinks, netlist.PinRef{Kind: netlist.KindPort, Idx: pout})
		}
		netC++
		b.AddNet(netlist.Net{
			Name:   fmt.Sprintf("cap%d", netC),
			Kind:   netlist.Signal,
			Driver: ref(ci),
			Sinks:  sinks,
		})
	}
	pff := cell("pff", tech.DFF, 2, 6, 80)
	b.AddNet(netlist.Net{
		Name:   "pin",
		Kind:   netlist.Signal,
		Driver: netlist.PinRef{Kind: netlist.KindPort, Idx: pin},
		Sinks:  []netlist.PinRef{{Kind: netlist.KindCell, Idx: pff}},
	})
	netC++
	b.AddNet(netlist.Net{
		Name:   fmt.Sprintf("pfo%d", netC),
		Kind:   netlist.Signal,
		Driver: ref(pff),
		Sinks:  []netlist.PinRef{ref(prev[r.Intn(len(prev))])},
	})
	return b
}

// assertSameReport compares two timing reports with exact float equality —
// the engine's contract is bit-identical results, not approximate ones.
func assertSameReport(t *testing.T, step int, got, want *sta.Report) {
	t.Helper()
	if got.WNS != want.WNS || got.TNS != want.TNS || got.Endpoints != want.Endpoints || got.Failing != want.Failing {
		t.Fatalf("step %d: summary diverged: got WNS=%v TNS=%v end=%d fail=%d, want WNS=%v TNS=%v end=%d fail=%d",
			step, got.WNS, got.TNS, got.Endpoints, got.Failing, want.WNS, want.TNS, want.Endpoints, want.Failing)
	}
	if len(got.CellSlack) != len(want.CellSlack) || len(got.NetSlack) != len(want.NetSlack) {
		t.Fatalf("step %d: slack array lengths diverged", step)
	}
	for i := range got.CellSlack {
		if got.CellSlack[i] != want.CellSlack[i] {
			t.Fatalf("step %d: CellSlack[%d] = %v, want %v", step, i, got.CellSlack[i], want.CellSlack[i])
		}
		if got.ArrOut[i] != want.ArrOut[i] {
			t.Fatalf("step %d: ArrOut[%d] = %v, want %v", step, i, got.ArrOut[i], want.ArrOut[i])
		}
	}
	for i := range got.NetSlack {
		if got.NetSlack[i] != want.NetSlack[i] {
			t.Fatalf("step %d: NetSlack[%d] = %v, want %v", step, i, got.NetSlack[i], want.NetSlack[i])
		}
	}
}

// TestIncrementalFullEquivalence drives random edit sequences — gate
// resizes, Vth swaps, repeater insertions — through the persistent
// incremental engine and, independently, through a from-scratch
// extract+Analyze on a clone, asserting float-exact equality of every
// produced number after every edit. This is the exactness invariant of
// DESIGN.md §10 under adversarial random traffic.
func TestIncrementalFullEquivalence(t *testing.T) {
	lib := tech.NewLibrary()
	sm, err := tech.NewScaleModel(1000)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rng.New(seed)
			ex := extract.New(lib, sm, extract.F2B)
			b := randomDAG(t, lib, r)
			if err := ex.Extract(b); err != nil {
				t.Fatal(err)
			}
			skew := r.Range(0, 25)
			o := New(lib, ex, DefaultOptions())
			o.Skew = skew
			eng := o.engineFor(b)

			check := func(step int) {
				t.Helper()
				got, err := eng.Analyze(skew)
				if err != nil {
					t.Fatalf("step %d: incremental: %v", step, err)
				}
				clone := b.Clone()
				exRef := extract.New(lib, sm, extract.F2B)
				if err := exRef.Extract(clone); err != nil {
					t.Fatalf("step %d: reference extract: %v", step, err)
				}
				for ni := range b.Nets {
					n, m := &b.Nets[ni], &clone.Nets[ni]
					if n.RouteLen != m.RouteLen || n.Layer != m.Layer || n.WireCapfF != m.WireCapfF || n.WireResOhm != m.WireResOhm {
						t.Fatalf("step %d: net %s parasitics diverged from full extraction: %+v vs %+v", step, n.Name, n, m)
					}
				}
				want, err := sta.Analyze(clone, skew)
				if err != nil {
					t.Fatalf("step %d: reference STA: %v", step, err)
				}
				assertSameReport(t, step, got, want)
			}
			check(0)

			buf := lib.MustCell(tech.BUF, 4, tech.RVT)
			for step := 1; step <= 40; step++ {
				switch r.Intn(5) {
				case 0, 1: // resize a random cell up or down
					ci := int32(r.Intn(len(b.Cells)))
					c := &b.Cells[ci]
					drive := tech.NextDriveUp(c.Master.Drive)
					if r.Bool(0.5) {
						drive = tech.NextDriveDown(c.Master.Drive)
					}
					if drive == 0 {
						continue
					}
					m, err := lib.Resize(c.Master, drive)
					if err != nil {
						t.Fatal(err)
					}
					c.Master = m
					o.beginResizePass(b)
					o.resized[ci] = true
					eng.MarkCellDirty(ci)
					if err := o.flushResizes(b, eng); err != nil {
						t.Fatal(err)
					}
				case 2, 3: // Vth swap — no geometry change, marks only
					ci := int32(r.Intn(len(b.Cells)))
					c := &b.Cells[ci]
					vth := tech.HVT
					if c.Master.Vth == tech.HVT {
						vth = tech.RVT
					}
					m, err := lib.SwapVth(c.Master, vth)
					if err != nil {
						t.Fatal(err)
					}
					c.Master = m
					eng.MarkCellDirty(ci)
				case 4: // repeater insertion — structural, engine rebuilds
					ni := int32(r.Intn(len(b.Nets)))
					if b.Nets[ni].Kind != netlist.Signal || len(b.Nets[ni].Sinks) == 0 {
						continue
					}
					var touched []int32
					if err := o.insertChain(b, ni, 1+r.Intn(2), buf, &touched); err != nil {
						t.Fatal(err)
					}
					if err := o.reExtract(b, &touched); err != nil {
						t.Fatal(err)
					}
				}
				check(step)
			}
		})
	}
}
