// Package opt implements the timing and power optimization passes of the
// flow (the paper's pre-CTS / post-CTS / post-route iterations in Encounter):
//
//   - repeater insertion on long and overloaded nets (the dominant source of
//     the paper's multi-million buffer counts, which track wirelength and
//     therefore shrink in 3D designs);
//   - slack-driven gate upsizing to close timing;
//   - positive-slack-driven gate downsizing for power — the key mechanism by
//     which the better timing of 3D designs converts into lower cell and pin
//     power (paper §3.2);
//   - RVT->HVT swapping under slack for dual-Vth designs (§6.2).
package opt

import (
	"fmt"
	"math"
	"sort"

	"fold3d/internal/extract"
	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/sta"
	"fold3d/internal/tech"
)

// Options tunes the optimizer.
type Options struct {
	// BufferDrive is the repeater drive strength.
	BufferDrive int
	// SlackMargin is the positive slack (ps) that power moves must preserve.
	SlackMargin float64
	// DownsizeMargin is the (larger) slack floor for gate downsizing: sizing
	// moves shift setup-critical structure and are guard-banded harder than
	// Vth swaps in sign-off flows.
	DownsizeMargin float64
	// MaxLoadfF triggers rule-based repeater insertion above this load.
	MaxLoadfF float64
	// MaxFanout triggers fanout-tree construction above this sink count.
	MaxFanout int
	// NeedSlackPS makes length-rule repeater insertion timing-driven: a long
	// net is only repeatered when its worst path slack is below this value
	// (tools do not spend buffers on paths with ample margin). Load and
	// fanout violations are always fixed. Zero selects the default.
	NeedSlackPS float64
	// SizePasses bounds each sizing loop.
	SizePasses int
	// AreaBudget caps the total cell area (µm²) repeater insertion may add;
	// 0 means unlimited. The flow sets it to the block's free placement
	// capacity so a fixed chip-floorplan outline can never overflow.
	AreaBudget float64
	// AreaBudgetDie, when either entry is positive, caps insertion per die
	// (folded blocks overflow per die, not in aggregate).
	AreaBudgetDie [2]float64
	// SpacingFactor multiplies the analytic optimal repeater spacing;
	// commercial flows insert more aggressively than the delay-optimal
	// spacing to also fix slew, so the default is below 1.
	SpacingFactor float64
	// FullRecompute disables incremental timing and extraction: every
	// analysis rebuilds the timing graph from scratch and every resize
	// flush re-extracts the whole block, reproducing the pre-incremental
	// flow step for step. Results are bit-identical either way — the
	// equivalence and fingerprint tests use this mode as the reference.
	FullRecompute bool
}

// DefaultOptions returns the flow defaults.
func DefaultOptions() Options {
	return Options{BufferDrive: 8, SlackMargin: 20, DownsizeMargin: 140, MaxLoadfF: 70, MaxFanout: 10, NeedSlackPS: 260, SizePasses: 8, SpacingFactor: 0.8}
}

// Optimizer holds the shared context of the passes.
type Optimizer struct {
	Lib   *tech.Library
	Ex    *extract.Extractor
	Opt   Options
	Skew  float64 // CTS uncertainty passed to STA
	nameC int

	eng       *sta.Engine  // persistent incremental timing engine
	resized   []bool       // per-pass scratch: cells whose geometry changed
	dirtyNets []int32      // per-flush scratch: nets needing re-extraction
	pins      []geom.Point // pin-position scratch for HPWL checks
}

// hpwl is geom.HPWL over the net's pins through the optimizer's scratch
// buffer, avoiding the per-net NetPins allocation in the repair loops.
func (o *Optimizer) hpwl(b *netlist.Block, n *netlist.Net) float64 {
	o.pins = b.AppendNetPins(o.pins[:0], n)
	return geom.HPWL(o.pins)
}

// New returns an optimizer bound to a library and extractor.
func New(lib *tech.Library, ex *extract.Extractor, opt Options) *Optimizer {
	o := &Optimizer{}
	o.Reinit(lib, ex, opt)
	return o
}

// Reinit re-arms the optimizer for a fresh block, resetting every piece of
// per-block state (options, skew, buffer name counter) while keeping the
// timing engine and scratch arrays for capacity reuse. A reinitialized
// optimizer behaves exactly like a newly constructed one.
func (o *Optimizer) Reinit(lib *tech.Library, ex *extract.Extractor, opt Options) {
	if opt.BufferDrive == 0 {
		fullRecompute := opt.FullRecompute
		opt = DefaultOptions()
		opt.FullRecompute = fullRecompute
	}
	o.Lib, o.Ex, o.Opt = lib, ex, opt
	o.Skew = 0
	o.nameC = 0
}

// engineFor returns the persistent timing engine bound to b, creating or
// rebinding it when the optimizer moves to a different block.
func (o *Optimizer) engineFor(b *netlist.Block) *sta.Engine {
	if o.eng == nil {
		o.eng = sta.NewEngine(b)
	} else if o.eng.Block() != b {
		o.eng.Rebind(b)
	}
	return o.eng
}

// analyzeAt runs timing at an explicit uncertainty through the persistent
// engine (a full rebuild per call in FullRecompute mode).
func (o *Optimizer) analyzeAt(b *netlist.Block, uncertaintyPS float64) (*sta.Report, error) {
	eng := o.engineFor(b)
	if o.Opt.FullRecompute {
		eng.InvalidateTopology()
	}
	return eng.Analyze(uncertaintyPS)
}

// analyze runs timing at the optimizer's CTS skew.
func (o *Optimizer) analyze(b *netlist.Block) (*sta.Report, error) {
	return o.analyzeAt(b, o.Skew)
}

// Timing returns b's current timing through the optimizer's persistent
// incremental engine, reusing cached propagation when only marked edits
// happened since the last call. The Report and its slices are owned by the
// engine and valid until the next timing call on this optimizer.
func (o *Optimizer) Timing(b *netlist.Block) (*sta.Report, error) {
	return o.analyze(b)
}

// InvalidateTiming drops the engine's cached timing state. Callers must
// invoke it after editing the block outside the optimizer's passes —
// placement legalization, manual re-extraction — so the next timing call
// rebuilds instead of trusting stale arrays.
func (o *Optimizer) InvalidateTiming() {
	if o.eng != nil {
		o.eng.InvalidateTopology()
	}
}

// beginResizePass resets the per-pass resized-cell flags.
func (o *Optimizer) beginResizePass(b *netlist.Block) {
	if cap(o.resized) < len(b.Cells) {
		o.resized = make([]bool, len(b.Cells))
		return
	}
	o.resized = o.resized[:len(b.Cells)]
	for i := range o.resized {
		o.resized[i] = false
	}
}

// flushResizes re-extracts every net touching a cell flagged in o.resized
// and hands the dirty sets to the engine. One scan over the pin lists
// replaces the full-block extraction of the non-incremental flow;
// bit-identical because extraction is a pure per-net function and only the
// flagged cells' pins moved. Clock nets touching a resized sink are
// re-extracted too (their wirelength feeds CTS and power) even though the
// timing graph ignores them.
func (o *Optimizer) flushResizes(b *netlist.Block, eng *sta.Engine) error {
	nets := o.dirtyNets[:0]
	for ni := range b.Nets {
		n := &b.Nets[ni]
		touched := n.Driver.Kind == netlist.KindCell && o.resized[n.Driver.Idx]
		if !touched {
			for _, s := range n.Sinks {
				if s.Kind == netlist.KindCell && o.resized[s.Idx] {
					touched = true
					break
				}
			}
		}
		if touched {
			nets = append(nets, int32(ni))
		}
	}
	o.dirtyNets = nets
	if o.Opt.FullRecompute {
		return o.Ex.Extract(b)
	}
	if err := o.Ex.Update(b, nets); err != nil {
		return err
	}
	for _, ni := range nets {
		if b.Nets[ni].Kind == netlist.Signal {
			eng.MarkNetDirty(ni)
		}
	}
	return nil
}

// reExtract flushes the structurally-touched net list accumulated by the
// repeater passes: a full extraction in FullRecompute mode, a dirty-net
// Update otherwise. The engine needs no marks here — the cell/net counts
// changed, so its next Analyze rebuilds from scratch anyway.
func (o *Optimizer) reExtract(b *netlist.Block, touched *[]int32) error {
	if o.Opt.FullRecompute {
		*touched = (*touched)[:0]
		return o.Ex.Extract(b)
	}
	err := o.Ex.Update(b, *touched)
	*touched = (*touched)[:0]
	return err
}

// OptimalBufferSpacing returns the classic repeater spacing in drawn µm for
// the optimizer's buffer on the given layer: L = sqrt(2*Rb*Cb / (rw*cw)).
// Because the extractor's effective per-drawn-µm RC already carries the
// scale shrink, the drawn spacing is automatically the physical spacing
// divided by sqrt(scale).
func (o *Optimizer) OptimalBufferSpacing(layerIdx int) (float64, error) {
	buf, err := o.Lib.Cell(tech.BUF, o.Opt.BufferDrive, tech.RVT)
	if err != nil {
		return 0, err
	}
	layer, err := o.Lib.Layer(layerIdx)
	if err != nil {
		return 0, err
	}
	rw := o.Ex.Scale.WireRPerUm(layer)
	cw := o.Ex.Scale.WireCPerUm(layer)
	sf := o.Opt.SpacingFactor
	if sf <= 0 {
		sf = 0.8
	}
	return sf * math.Sqrt(2*buf.DriveR*buf.InCapfF/(rw*cw)), nil
}

// BufferLongNets rebuilds high-fanout nets as buffer trees and inserts
// repeater chains on nets whose length exceeds the optimal spacing or whose
// load exceeds MaxLoadfF. It rewires the netlist, places the repeaters along
// the driver-to-load axis, and re-extracts. Returns the number of repeaters
// inserted. Clock nets are CTS territory and are skipped.
func (o *Optimizer) BufferLongNets(b *netlist.Block) (int, error) {
	spacing, err := o.OptimalBufferSpacing(5)
	if err != nil {
		return 0, err
	}
	buf, err := o.Lib.Cell(tech.BUF, o.Opt.BufferDrive, tech.RVT)
	if err != nil {
		return 0, err
	}

	// A single budget account covers fanout trees (charged first — they are
	// mandatory for timing) and the length/load chains. touched accumulates
	// the nets each structural edit rewired or created, so the incremental
	// path re-extracts only those.
	// Repeater insertion grows the cell and net lists; each inserted buffer
	// adds one cell and one net. Reserve modestly — a sixteenth of the
	// block, tightened to the area budget's hard ceiling on insertions when
	// that is smaller — and let append's amortized doubling carry the rare
	// buffer-heavy block: a large zeroed up-front reservation costs more in
	// allocation and GC scan than the occasional regrow copy. Capacity is
	// not observable, so the reservation cannot change results.
	db := newDieBudget(o.Opt, buf.Area())
	grow := len(b.Cells)/16 + 16
	if m := db.maxAdds(); m >= 0 && m+16 < grow {
		grow = m + 16
	}
	b.GrowCells(grow)
	b.GrowNets(grow)
	var touched []int32
	inserted, err := o.buildFanoutTrees(b, buf, db, &touched)
	if err != nil {
		return inserted, err
	}
	if inserted > 0 {
		if err := o.reExtract(b, &touched); err != nil {
			return inserted, err
		}
	}

	// Timing-driven selection: long nets are repeatered only when their
	// path slack is thin — this is how a 3D floorplan's looser block I/O
	// budgets translate into the paper's lower buffer counts.
	needSlack := o.Opt.NeedSlackPS
	if needSlack == 0 {
		needSlack = 260
	}
	rep, err := o.analyzeAt(b, 0)
	if err != nil {
		return inserted, err
	}
	// Longest nets first: when the area budget binds, the nets that gain
	// most from repeaters get them.
	numNets := len(b.Nets)
	order := make([]int, 0, numNets)
	for ni := 0; ni < numNets; ni++ {
		if b.Nets[ni].Kind == netlist.Signal {
			order = append(order, ni)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return b.Nets[order[i]].RouteLen > b.Nets[order[j]].RouteLen
	})
	for _, ni := range order {
		n := &b.Nets[ni]
		wire, pins := extract.TotalLoad(b, n)
		needLen := n.RouteLen > 1.3*spacing && (ni >= len(rep.NetSlack) || rep.NetSlack[ni] < needSlack)
		needLoad := wire+pins > o.Opt.MaxLoadfF
		if !needLen && !needLoad {
			continue
		}
		// Multi-sink spans are repaired by spatial splitting (a buffer per
		// sink cluster, recursively); the resulting long two-pin legs and
		// plain two-pin nets get classic repeater chains.
		if len(b.Nets[ni].Sinks) > 1 && o.hpwl(b, &b.Nets[ni]) > 1.5*spacing {
			k, err := o.splitSpatially(b, int32(ni), spacing, buf, db, &touched)
			if err != nil {
				return inserted, err
			}
			inserted += k
			continue
		}
		k := int(n.RouteLen / spacing)
		if needLoad && k == 0 {
			k = 1
		}
		if k > 8 {
			k = 8 // diminishing returns; matches tool behavior
		}
		if k == 0 {
			continue
		}
		die := b.PinDie(n.Driver)
		k = db.take(die, k)
		if k == 0 {
			continue
		}
		if err := o.insertChain(b, int32(ni), k, buf, &touched); err != nil {
			return inserted, err
		}
		inserted += k
	}
	if err := o.reExtract(b, &touched); err != nil {
		return inserted, err
	}
	return inserted, nil
}

// splitSpatially repairs a spread multi-sink net: sinks are divided into
// two position clusters, each cluster gets a driving buffer at its centroid
// (so the trunk becomes two point-to-point legs), recursing while a cluster
// still spans more than the repeater spacing. Returns buffers added; every
// net it rewires or creates is appended to touched.
func (o *Optimizer) splitSpatially(b *netlist.Block, ni int32, spacing float64, buf *tech.Cell, db *dieBudget, touched *[]int32) (int, error) {
	added := 0
	// Work list of nets to consider; children are appended as created, with
	// bounded recursion depth — each level halves the sink spread, and past
	// two levels the added buffer stages cost more than the wire they save.
	type witem struct {
		ni    int32
		depth int
	}
	work := []witem{{ni, 0}}
	for len(work) > 0 {
		cur := work[0].ni
		depth := work[0].depth
		work = work[1:]
		n := &b.Nets[cur]
		if depth > 2 || len(n.Sinks) < 2 || o.hpwl(b, n) <= 1.5*spacing {
			continue
		}
		drvDie := b.PinDie(n.Driver)
		if db.take(drvDie, 2) < 2 {
			break
		}
		// Split sinks along the longer axis of their bounding box.
		pts := make([]geom.Point, len(n.Sinks))
		for i, sref := range n.Sinks {
			pts[i] = b.PinPos(sref)
		}
		bb := geom.BoundingBox(pts)
		byX := bb.W() >= bb.H()
		idx := make([]int, len(n.Sinks))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, c int) bool {
			if byX {
				return pts[idx[a]].X < pts[idx[c]].X
			}
			return pts[idx[a]].Y < pts[idx[c]].Y
		})
		mid := len(idx) / 2
		act := n.Activity
		var newSinks []netlist.PinRef
		for _, half := range [][]int{idx[:mid], idx[mid:]} {
			if len(half) == 0 {
				continue
			}
			var ctr geom.Point
			refs := make([]netlist.PinRef, len(half))
			for i, k := range half {
				refs[i] = b.Nets[cur].Sinks[k]
				ctr = ctr.Add(pts[k])
			}
			ctr = ctr.Scale(1 / float64(len(half)))
			o.nameC++
			ci := b.AddCell(netlist.Instance{
				Name:     fmt.Sprintf("sbuf%d", o.nameC),
				Master:   buf,
				Pos:      geom.Point{X: ctr.X - buf.Width/2, Y: ctr.Y - tech.CellHeight/2},
				Die:      drvDie,
				Activity: act,
			})
			bufRef := netlist.PinRef{Kind: netlist.KindCell, Idx: ci}
			child := b.AddNet(netlist.Net{
				Name:     fmt.Sprintf("%s_s%d", b.Nets[cur].Name, o.nameC),
				Kind:     netlist.Signal,
				Driver:   bufRef,
				Sinks:    refs,
				Activity: act,
			})
			newSinks = append(newSinks, bufRef)
			*touched = append(*touched, child)
			work = append(work, witem{child, depth + 1})
			added++
		}
		if len(newSinks) > 0 {
			b.Nets[cur].Sinks = newSinks
			*touched = append(*touched, cur)
		}
		// Long legs from the driver to the cluster buffers get chains.
		if k := int(o.hpwl(b, &b.Nets[cur]) / spacing); k > 0 {
			k = db.take(b.PinDie(b.Nets[cur].Driver), minInt(k, 8))
			if k > 0 {
				if err := o.insertChain(b, cur, k, buf, touched); err != nil {
					return added, err
				}
				added += k
			}
		}
	}
	return added, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// dieBudget tracks the remaining repeater-insertion area per die.
type dieBudget struct {
	remaining [2]float64
	perDie    bool
	cellArea  float64
}

func newDieBudget(opt Options, cellArea float64) *dieBudget {
	db := &dieBudget{cellArea: cellArea}
	if opt.AreaBudgetDie[0] > 0 || opt.AreaBudgetDie[1] > 0 {
		db.perDie = true
		db.remaining = opt.AreaBudgetDie
	} else if opt.AreaBudget > 0 {
		db.remaining[0] = opt.AreaBudget
	} else {
		db.remaining[0] = 1e18
	}
	return db
}

// maxAdds returns the hard ceiling on repeaters the budget can still
// admit across both dies, or -1 when the budget is unbounded.
func (db *dieBudget) maxAdds() int {
	tot := db.remaining[0] + db.remaining[1]
	if tot >= 1e17 {
		return -1
	}
	return int(tot / db.cellArea)
}

// take reserves up to k repeater slots on die d, returning how many fit.
func (db *dieBudget) take(d netlist.Die, k int) int {
	idx := 0
	if db.perDie {
		idx = int(d)
	}
	fit := int(db.remaining[idx] / db.cellArea)
	if k > fit {
		k = fit
	}
	if k > 0 {
		db.remaining[idx] -= float64(k) * db.cellArea
	}
	return k
}

// buildFanoutTrees splits every signal net with more than MaxFanout sinks
// into a buffered tree: sinks are clustered geometrically, each cluster gets
// a driving buffer at its centroid, and the original driver drives the
// cluster buffers (recursively, if there are many clusters). Insertion stops
// when the die budget runs out; any sinks not yet clustered stay on the
// original net. Returns the number of buffers added; every net it rewires
// or creates is appended to touched.
func (o *Optimizer) buildFanoutTrees(b *netlist.Block, buf *tech.Cell, db *dieBudget, touched *[]int32) (int, error) {
	maxFo := o.Opt.MaxFanout
	if maxFo <= 1 {
		maxFo = 10
	}
	added := 0
	numNets := len(b.Nets)
	for ni := 0; ni < numNets; ni++ {
		if b.Nets[ni].Kind != netlist.Signal || len(b.Nets[ni].Sinks) <= maxFo {
			continue
		}
		// The original net keeps its driver and 3D via bookkeeping; only
		// its sink list is rebuilt around the tree.
		for len(b.Nets[ni].Sinks) > maxFo {
			n := &b.Nets[ni]
			drvDie := b.PinDie(n.Driver)
			act := n.Activity
			// Cluster sinks by position into groups of maxFo.
			type sk struct {
				ref netlist.PinRef
				pos geom.Point
			}
			sinks := make([]sk, len(n.Sinks))
			for i, s := range n.Sinks {
				sinks[i] = sk{s, b.PinPos(s)}
			}
			sort.Slice(sinks, func(i, j int) bool {
				if sinks[i].pos.X < sinks[j].pos.X {
					return true
				}
				if sinks[i].pos.X > sinks[j].pos.X {
					return false
				}
				return sinks[i].pos.Y < sinks[j].pos.Y
			})
			var newSinks []netlist.PinRef
			exhausted := false
			for at := 0; at < len(sinks); at += maxFo {
				end := at + maxFo
				if end > len(sinks) {
					end = len(sinks)
				}
				cluster := sinks[at:end]
				if exhausted || db.take(drvDie, 1) == 0 {
					// Out of area: leave the rest directly on the net.
					exhausted = true
					for _, s := range cluster {
						newSinks = append(newSinks, s.ref)
					}
					continue
				}
				var ctr geom.Point
				for _, s := range cluster {
					ctr = ctr.Add(s.pos)
				}
				ctr = ctr.Scale(1 / float64(len(cluster)))
				o.nameC++
				ci := b.AddCell(netlist.Instance{
					Name:     fmt.Sprintf("fbuf%d", o.nameC),
					Master:   buf,
					Pos:      geom.Point{X: ctr.X - buf.Width/2, Y: ctr.Y - tech.CellHeight/2},
					Die:      drvDie,
					Activity: act,
				})
				bufRef := netlist.PinRef{Kind: netlist.KindCell, Idx: ci}
				refs := make([]netlist.PinRef, len(cluster))
				for i, s := range cluster {
					refs[i] = s.ref
				}
				child := b.AddNet(netlist.Net{
					Name:     fmt.Sprintf("%s_f%d", b.Nets[ni].Name, o.nameC),
					Kind:     netlist.Signal,
					Driver:   bufRef,
					Sinks:    refs,
					Activity: act,
				})
				*touched = append(*touched, child)
				newSinks = append(newSinks, bufRef)
				added++
			}
			b.Nets[ni].Sinks = newSinks
			*touched = append(*touched, int32(ni))
			if exhausted {
				break
			}
		}
	}
	return added, nil
}

// insertChain splits net ni with k repeaters. The original net keeps the
// driver and gets the first repeater as its only sink; the last new net
// takes over the original sinks (and the original 3D via points, so the
// crossing stays accounted). Every net it rewires or creates is appended
// to touched.
func (o *Optimizer) insertChain(b *netlist.Block, ni int32, k int, buf *tech.Cell, touched *[]int32) error {
	n := &b.Nets[ni]
	from := b.PinPos(n.Driver)
	to := sinksCentroid(b, n)
	origSinks := n.Sinks
	origVias := n.Vias
	origCross := n.Crossings
	driverDie := b.PinDie(n.Driver)
	act := n.Activity

	prevDriver := n.Driver
	// Rebuild: original net now ends at the first buffer.
	for i := 0; i < k; i++ {
		t := float64(i+1) / float64(k+1)
		pos := geom.Point{X: from.X + t*(to.X-from.X), Y: from.Y + t*(to.Y-from.Y)}
		o.nameC++
		ci := b.AddCell(netlist.Instance{
			Name:     fmt.Sprintf("rbuf%d", o.nameC),
			Master:   buf,
			Pos:      geom.Point{X: pos.X - buf.Width/2, Y: pos.Y - tech.CellHeight/2},
			Die:      driverDie, // repeaters stay on the driver die; the via crossing stays on the final segment
			Activity: act,
		})
		bufRef := netlist.PinRef{Kind: netlist.KindCell, Idx: ci}
		if i == 0 {
			n = &b.Nets[ni] // re-take pointer: AddCell cannot move nets, but stay safe
			n.Sinks = []netlist.PinRef{bufRef}
			n.Vias = nil
			n.Crossings = 0
			*touched = append(*touched, ni)
		} else {
			link := b.AddNet(netlist.Net{
				Name:     fmt.Sprintf("%s_r%d", b.Nets[ni].Name, i),
				Kind:     netlist.Signal,
				Driver:   prevDriver,
				Sinks:    []netlist.PinRef{bufRef},
				Activity: act,
			})
			*touched = append(*touched, link)
		}
		prevDriver = bufRef
	}
	last := b.AddNet(netlist.Net{
		Name:      fmt.Sprintf("%s_rl", b.Nets[ni].Name),
		Kind:      netlist.Signal,
		Driver:    prevDriver,
		Sinks:     origSinks,
		Activity:  act,
		Vias:      origVias,
		Crossings: origCross,
	})
	*touched = append(*touched, last)
	return nil
}

func sinksCentroid(b *netlist.Block, n *netlist.Net) geom.Point {
	var c geom.Point
	for _, s := range n.Sinks {
		p := b.PinPos(s)
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(n.Sinks)))
}

// FixTiming upsizes cells on failing paths until timing is met or no move
// helps. Returns the final timing report (engine-owned; see Timing).
func (o *Optimizer) FixTiming(b *netlist.Block) (*sta.Report, error) {
	eng := o.engineFor(b)
	var rep *sta.Report
	var err error
	for pass := 0; pass < o.Opt.SizePasses; pass++ {
		rep, err = o.analyze(b)
		if err != nil {
			return nil, err
		}
		if rep.Met() {
			return rep, nil
		}
		driverNet := eng.DriverNets()
		o.beginResizePass(b)
		moves := 0
		for i := range b.Cells {
			c := &b.Cells[i]
			if rep.CellSlack[i] >= 0 || c.Fixed || c.IsClockBuf {
				continue
			}
			up := tech.NextDriveUp(c.Master.Drive)
			if up == 0 {
				continue
			}
			bigger, err := o.Lib.Resize(c.Master, up)
			if err != nil {
				return nil, err
			}
			// Upsizing helps only load-dominated stages; it costs input cap
			// upstream. Accept when the stage gain beats the upstream loss.
			gain := o.stageDelta(b, driverNet, int32(i), c.Master, bigger)
			loss := o.upstreamDelta(b, eng, int32(i), c.Master, bigger)
			if gain+loss < 0 { // any net improvement
				c.Master = bigger
				o.resized[i] = true
				eng.MarkCellDirty(int32(i))
				moves++
			}
		}
		if moves == 0 {
			break
		}
		if err := o.flushResizes(b, eng); err != nil {
			return nil, err
		}
	}
	return o.analyze(b)
}

// pathShare is the assumed number of cells sharing a path's slack during
// one optimization pass; each move may claim only slack/pathShare so that
// concurrent moves along one path cannot oversubscribe it (the full STA
// between passes trues the bookkeeping).
const pathShare = 4.0

// RecoverPower downsizes cells whose worst slack exceeds the margin, most
// positive slack first, with per-pass slack budgeting. Returns the number of
// cells downsized.
func (o *Optimizer) RecoverPower(b *netlist.Block) (int, error) {
	margin := o.Opt.DownsizeMargin
	if margin < o.Opt.SlackMargin {
		margin = o.Opt.SlackMargin
	}
	total := 0
	eng := o.engineFor(b)
	for pass := 0; pass < o.Opt.SizePasses; pass++ {
		rep, err := o.analyze(b)
		if err != nil {
			return total, err
		}
		driverNet := eng.DriverNets()
		o.beginResizePass(b)
		slack := append([]float64(nil), rep.CellSlack...)
		moves := 0
		for i := range b.Cells {
			c := &b.Cells[i]
			if c.Fixed || c.IsClockBuf {
				continue
			}
			down := tech.NextDriveDown(c.Master.Drive)
			if down == 0 {
				continue
			}
			smaller, err := o.Lib.Resize(c.Master, down)
			if err != nil {
				return total, err
			}
			dSelf := o.stageDelta(b, driverNet, int32(i), c.Master, smaller)
			dUp := o.upstreamDelta(b, eng, int32(i), c.Master, smaller)
			cost := dSelf + dUp // dUp is negative: smaller input cap helps upstream
			// Slack budgeting: the cell's worst slack is shared with the
			// other cells on its path, each of which may also claim a move
			// this pass; only a share of the headroom may be consumed here.
			// Full STA between passes trues the books.
			budget := (slack[i] - margin) / pathShare
			if cost <= 0 || cost <= budget {
				c.Master = smaller
				slack[i] -= cost * pathShare
				o.resized[i] = true
				eng.MarkCellDirty(int32(i))
				moves++
			}
		}
		total += moves
		if moves == 0 {
			break
		}
		if err := o.flushResizes(b, eng); err != nil {
			return total, err
		}
	}
	return total, nil
}

// SwapToHVT converts RVT cells to HVT where the slack affords the ~30%
// stage-delay penalty. Clock buffers stay RVT. Returns the swap count.
func (o *Optimizer) SwapToHVT(b *netlist.Block) (int, error) {
	total := 0
	eng := o.engineFor(b)
	for pass := 0; pass < o.Opt.SizePasses; pass++ {
		rep, err := o.analyze(b)
		if err != nil {
			return total, err
		}
		driverNet := eng.DriverNets()
		slack := append([]float64(nil), rep.CellSlack...)
		moves := 0
		for i := range b.Cells {
			c := &b.Cells[i]
			if c.Fixed || c.IsClockBuf || c.Master.Vth == tech.HVT {
				continue
			}
			hvt, err := o.Lib.SwapVth(c.Master, tech.HVT)
			if err != nil {
				return total, err
			}
			cost := o.stageDelta(b, driverNet, int32(i), c.Master, hvt)
			budget := (slack[i] - o.Opt.SlackMargin) / pathShare
			if cost <= budget {
				c.Master = hvt
				slack[i] -= cost * pathShare
				eng.MarkCellDirty(int32(i))
				moves++
			}
		}
		total += moves
		if moves == 0 {
			break
		}
		// Vth swaps do not change geometry or caps; no re-extract needed —
		// the engine re-propagates from the marked cells alone.
	}
	return total, nil
}

// stageDelta estimates the stage-delay change (ps) of swapping cell ci's
// master from oldM to newM, at constant load. driverNet maps cells to their
// driven net (-1 if none).
func (o *Optimizer) stageDelta(b *netlist.Block, driverNet []int32, ci int32, oldM, newM *tech.Cell) float64 {
	var load float64
	if ni := driverNet[ci]; ni >= 0 {
		wire, pins := extract.TotalLoad(b, &b.Nets[ni])
		load = wire + pins
	}
	d := (newM.Intr - oldM.Intr) + (newM.DriveR-oldM.DriveR)*load*1e-3
	if oldM.Fam == tech.DFF {
		d += newM.ClkQ - oldM.ClkQ
	}
	return d
}

// upstreamDelta estimates the delay change (ps) induced on the worst
// upstream stage by the input-cap change of resizing cell ci, reading the
// fanin adjacency the engine already maintains.
func (o *Optimizer) upstreamDelta(b *netlist.Block, eng *sta.Engine, ci int32, oldM, newM *tech.Cell) float64 {
	dCap := float64(oldM.Fam.NumInputs()) * (newM.InCapfF - oldM.InCapfF)
	var worst float64
	for _, ni := range eng.FaninNets(ci) {
		n := &b.Nets[ni]
		d := b.DriverR(n.Driver) * dCap * 1e-3
		if math.Abs(d) > math.Abs(worst) {
			worst = d
		}
	}
	return worst
}
