package opt

import (
	"fmt"
	"testing"

	"fold3d/internal/extract"
	"fold3d/internal/geom"
	"fold3d/internal/netlist"
	"fold3d/internal/rng"
	"fold3d/internal/sta"
	"fold3d/internal/tech"
)

func optSetup(t *testing.T) (*tech.Library, *extract.Extractor) {
	t.Helper()
	lib := tech.NewLibrary()
	sm, err := tech.NewScaleModel(1000)
	if err != nil {
		t.Fatal(err)
	}
	return lib, extract.New(lib, sm, extract.F2B)
}

// chainBlock builds dff -> k logic stages -> dff placed across the outline.
func chainBlock(t *testing.T, lib *tech.Library, stages int, span float64) *netlist.Block {
	t.Helper()
	b := netlist.NewBlock("cb", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, span, 60)
	prev := b.AddCell(netlist.Instance{Name: "ff0", Master: lib.MustCell(tech.DFF, 2, tech.RVT),
		Pos: geom.Point{X: 1, Y: 1}})
	for i := 0; i < stages; i++ {
		x := 1 + (span-10)*float64(i+1)/float64(stages+1)
		cur := b.AddCell(netlist.Instance{Name: fmt.Sprintf("g%d", i),
			Master: lib.MustCell(tech.NAND2, 2, tech.RVT), Pos: geom.Point{X: x, Y: 1}})
		b.AddNet(netlist.Net{Name: fmt.Sprintf("n%d", i),
			Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: prev},
			Sinks:  []netlist.PinRef{{Kind: netlist.KindCell, Idx: cur}}})
		prev = cur
	}
	ff1 := b.AddCell(netlist.Instance{Name: "ff1", Master: lib.MustCell(tech.DFF, 2, tech.RVT),
		Pos: geom.Point{X: span - 5, Y: 1}})
	b.AddNet(netlist.Net{Name: "nend",
		Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: prev},
		Sinks:  []netlist.PinRef{{Kind: netlist.KindCell, Idx: ff1}}})
	return b
}

func TestOptimalBufferSpacing(t *testing.T) {
	lib, ex := optSetup(t)
	o := New(lib, ex, DefaultOptions())
	sp, err := o.OptimalBufferSpacing(5)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 || sp > 1000 {
		t.Errorf("spacing = %v", sp)
	}
}

func TestBufferLongNetsInsertsAndStaysValid(t *testing.T) {
	lib, ex := optSetup(t)
	b := chainBlock(t, lib, 4, 200)
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	o := New(lib, ex, DefaultOptions())
	n0 := len(b.Cells)
	ins, err := o.BufferLongNets(b)
	if err != nil {
		t.Fatal(err)
	}
	if ins == 0 {
		t.Fatal("no repeaters inserted on 40um+ nets")
	}
	if len(b.Cells) != n0+ins {
		t.Errorf("cell count %d != %d + %d", len(b.Cells), n0, ins)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.NumBuffers() != ins {
		t.Errorf("NumBuffers = %d, want %d", b.NumBuffers(), ins)
	}
	// Timing must improve on a long-wire chain.
	if _, err := sta.Analyze(b, 0); err != nil {
		t.Fatal(err)
	}
}

func TestBufferingImprovesLongPathTiming(t *testing.T) {
	lib, ex := optSetup(t)
	b := chainBlock(t, lib, 3, 300)
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	before, err := sta.Analyze(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	o := New(lib, ex, DefaultOptions())
	if _, err := o.BufferLongNets(b); err != nil {
		t.Fatal(err)
	}
	after, err := sta.Analyze(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after.WNS <= before.WNS {
		t.Errorf("buffering did not help: %v -> %v", before.WNS, after.WNS)
	}
}

func TestAreaBudgetRespected(t *testing.T) {
	lib, ex := optSetup(t)
	b := chainBlock(t, lib, 6, 400)
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	buf := lib.MustCell(tech.BUF, opt.BufferDrive, tech.RVT)
	opt.AreaBudget = 3 * buf.Area() // room for only 3 repeaters
	o := New(lib, ex, opt)
	ins, err := o.BufferLongNets(b)
	if err != nil {
		t.Fatal(err)
	}
	if ins > 3 {
		t.Errorf("budget violated: inserted %d", ins)
	}
}

func TestFanoutTreeCapsFanout(t *testing.T) {
	lib, ex := optSetup(t)
	b := netlist.NewBlock("fo", tech.CPUClock)
	b.Outline[0] = geom.NewRect(0, 0, 60, 60)
	r := rng.New(3)
	drv := b.AddCell(netlist.Instance{Name: "drv", Master: lib.MustCell(tech.INV, 2, tech.RVT),
		Pos: geom.Point{X: 30, Y: 30}})
	net := netlist.Net{Name: "big", Driver: netlist.PinRef{Kind: netlist.KindCell, Idx: drv}}
	for i := 0; i < 40; i++ {
		s := b.AddCell(netlist.Instance{Name: fmt.Sprintf("s%d", i),
			Master: lib.MustCell(tech.NAND2, 2, tech.RVT),
			Pos:    geom.Point{X: r.Range(1, 58), Y: r.Range(1, 58)}})
		net.Sinks = append(net.Sinks, netlist.PinRef{Kind: netlist.KindCell, Idx: s})
	}
	b.AddNet(net)
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	o := New(lib, ex, DefaultOptions())
	if _, err := o.BufferLongNets(b); err != nil {
		t.Fatal(err)
	}
	maxFo := 0
	for i := range b.Nets {
		if fo := len(b.Nets[i].Sinks); fo > maxFo {
			maxFo = fo
		}
	}
	if maxFo > DefaultOptions().MaxFanout {
		t.Errorf("max fanout after trees = %d", maxFo)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every original sink must still be reachable from drv via buffers.
	reached := map[int32]bool{}
	frontier := []int32{int32(drv)}
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		for ni := range b.Nets {
			n := &b.Nets[ni]
			if n.Driver.Kind == netlist.KindCell && n.Driver.Idx == v {
				for _, s := range n.Sinks {
					if s.Kind == netlist.KindCell && !reached[s.Idx] {
						reached[s.Idx] = true
						frontier = append(frontier, s.Idx)
					}
				}
			}
		}
	}
	for i := 1; i <= 40; i++ {
		if !reached[int32(i)] {
			t.Fatalf("sink s%d lost by fanout tree", i-1)
		}
	}
}

func TestFixTimingUpsizes(t *testing.T) {
	lib, ex := optSetup(t)
	b := chainBlock(t, lib, 10, 150)
	// Heavy load at the end: force violations.
	for i := 0; i < 6; i++ {
		s := b.AddCell(netlist.Instance{Name: fmt.Sprintf("ld%d", i),
			Master: lib.MustCell(tech.DFF, 16, tech.RVT), Pos: geom.Point{X: 100, Y: 30}})
		b.Nets[len(b.Nets)-1].Sinks = append(b.Nets[len(b.Nets)-1].Sinks,
			netlist.PinRef{Kind: netlist.KindCell, Idx: s})
	}
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	before, _ := sta.Analyze(b, 0)
	o := New(lib, ex, DefaultOptions())
	rep, err := o.FixTiming(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WNS < before.WNS {
		t.Errorf("FixTiming made timing worse: %v -> %v", before.WNS, rep.WNS)
	}
	if netlist.MeanDrive(b) <= 2.2 {
		t.Errorf("no upsizing happened: mean drive %v", netlist.MeanDrive(b))
	}
}

func TestRecoverPowerKeepsTiming(t *testing.T) {
	lib, ex := optSetup(t)
	b := chainBlock(t, lib, 3, 60)
	// Oversize everything first.
	for i := range b.Cells {
		b.Cells[i].Master = lib.MustCell(b.Cells[i].Master.Fam, 16, tech.RVT)
	}
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	o := New(lib, ex, DefaultOptions())
	down, err := o.RecoverPower(b)
	if err != nil {
		t.Fatal(err)
	}
	if down == 0 {
		t.Fatal("nothing downsized despite huge slack")
	}
	rep, err := sta.Analyze(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WNS < 0 {
		t.Errorf("power recovery broke timing: WNS %v", rep.WNS)
	}
}

func TestSwapToHVT(t *testing.T) {
	lib, ex := optSetup(t)
	b := chainBlock(t, lib, 3, 60)
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	o := New(lib, ex, DefaultOptions())
	n, err := o.SwapToHVT(b)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no HVT swaps despite slack")
	}
	if b.HVTFraction() == 0 {
		t.Error("HVT fraction still zero")
	}
	rep, err := sta.Analyze(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WNS < 0 {
		t.Errorf("HVT swap broke timing: WNS %v", rep.WNS)
	}
}

func TestChainPreservesVias(t *testing.T) {
	lib, ex := optSetup(t)
	b := chainBlock(t, lib, 1, 200)
	b.Is3D = true
	b.Outline[1] = b.Outline[0]
	// Make the last net a 3D net with a via.
	last := len(b.Nets) - 1
	b.Cells[b.Nets[last].Sinks[0].Idx].Die = netlist.DieTop
	b.Nets[last].Vias = []geom.Point{{X: 100, Y: 1}}
	b.Nets[last].Crossings = 1
	if err := ex.Extract(b); err != nil {
		t.Fatal(err)
	}
	o := New(lib, ex, DefaultOptions())
	if _, err := o.BufferLongNets(b); err != nil {
		t.Fatal(err)
	}
	// The via must survive on exactly one net.
	vias := 0
	for i := range b.Nets {
		vias += b.Nets[i].Crossings
	}
	if vias != 1 {
		t.Errorf("crossings after buffering = %d, want 1", vias)
	}
}
