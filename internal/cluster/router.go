package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// TokenHeader carries the shared fleet secret on every peer-to-peer
// request (proxied jobs, artifact fetches). Nodes started with -peer-token
// reject peer requests without the matching value.
const TokenHeader = "X-Fold3d-Peer-Token"

// ForwardHeader marks a request as already proxied once, carrying the
// forwarding node's ID. A node receiving it always handles the request
// locally — even if its own ring disagrees about the owner — so a fleet
// misconfiguration degrades to one extra hop, never a proxy loop.
const ForwardHeader = "X-Fold3d-Forwarded"

// ErrPeerUnreachable reports that the owner node could not be reached when
// proxying a request. The server maps it to 502.
var ErrPeerUnreachable = errors.New("cluster: peer unreachable")

// maxArtifactBytes bounds a peer artifact response. Block artifacts are a
// few MB; 64 MiB leaves generous headroom while still bounding a
// misbehaving peer.
const maxArtifactBytes = 64 << 20

// Router proxies requests to their owner node and fetches cache entries
// from peers. One Router serves a node for its lifetime; it is safe for
// concurrent use.
type Router struct {
	ring  *Ring
	token string
	// proxy carries forwarded client requests; no timeout, because a
	// forwarded GET /events legitimately streams for the life of a job.
	// Cancellation flows from the inbound request's context instead.
	proxy *http.Client
	// fetch carries artifact fetches, which are one bounded read.
	fetch *http.Client
}

// NewRouter builds a Router over the ring. token may be empty (open
// fleet, e.g. tests on localhost).
func NewRouter(ring *Ring, token string) *Router {
	return &Router{
		ring:  ring,
		token: token,
		proxy: &http.Client{},
		fetch: &http.Client{Timeout: 30 * time.Second},
	}
}

// Ring returns the ring the router routes over.
func (rt *Router) Ring() *Ring { return rt.ring }

// Authorize reports whether a peer request carries the fleet token. With
// no token configured every request passes.
func (rt *Router) Authorize(r *http.Request) bool {
	return rt.token == "" || r.Header.Get(TokenHeader) == rt.token
}

// Forwarded reports whether the request was already proxied by a peer.
func (rt *Router) Forwarded(r *http.Request) bool {
	return r.Header.Get(ForwardHeader) != ""
}

// OwnerOfID resolves the node that minted a fleet-scoped job or batch ID
// by its "<node>-" prefix. IDs without a known node prefix (single-node
// legacy IDs like "job-000001") return ok=false.
func (rt *Router) OwnerOfID(id string) (Node, bool) {
	prefix, _, ok := strings.Cut(id, "-")
	if !ok {
		return Node{}, false
	}
	return rt.ring.NodeByID(prefix)
}

// Forward proxies the inbound request to node and streams the response
// back. body is the already-read request body (the caller consumed it to
// compute the routing fingerprint); nil for GETs. Returns an error
// wrapping ErrPeerUnreachable if the node cannot be reached; once the
// upstream has responded, the response — whatever its status — is relayed
// verbatim and Forward returns nil.
func (rt *Router) Forward(w http.ResponseWriter, r *http.Request, node Node, body []byte) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method, node.URL+r.URL.RequestURI(), rd)
	if err != nil {
		return fmt.Errorf("cluster: forward to %s: %v: %w", node.ID, err, ErrPeerUnreachable)
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	out.Header.Set(ForwardHeader, rt.ring.Self())
	if rt.token != "" {
		out.Header.Set(TokenHeader, rt.token)
	}
	resp, err := rt.proxy.Do(out)
	if err != nil {
		return fmt.Errorf("cluster: forward to %s: %v: %w", node.ID, err, ErrPeerUnreachable)
	}
	defer func() { _ = resp.Body.Close() }()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	// Relay with per-chunk flushing so a proxied NDJSON event stream
	// reaches the client as events happen, not when the job ends.
	fw := io.Writer(w)
	if f, ok := w.(http.Flusher); ok {
		fw = flushWriter{w: w, f: f}
	}
	_, _ = io.Copy(fw, resp.Body)
	return nil
}

// flushWriter flushes after every write so proxied streams stay live.
type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.f.Flush()
	return n, err
}

// Tier returns the router's network cache tier: a pipeline.CacheTier that
// fetches wire entries from peers over GET /v1/artifacts/{key}.
func (rt *Router) Tier() *PeerTier { return &PeerTier{rt: rt} }

// PeerTier fetches cache entries from fleet peers. It implements
// pipeline.CacheTier: Fetch walks the key's ring preference order (the
// artifact-key owner first, then successors — jobs route by request
// fingerprint, so a block artifact may live on any node that ran a job
// needing it), skipping self; the first 200 wins. Any failure — network,
// 404, 503 — is simply "nothing at this tier", and a corrupt body is
// caught downstream by the cache's checksum validation and counted as a
// miss, exactly like a corrupt disk-spill file.
type PeerTier struct {
	rt *Router
}

// Label attributes this tier's hits to Stats.PeerHits.
func (t *PeerTier) Label() string { return "peer" }

// Fetch retrieves the wire entry for key from the first peer that has it.
func (t *PeerTier) Fetch(key string) ([]byte, error) {
	for _, node := range t.rt.ring.Sequence(key) {
		if node.ID == t.rt.ring.Self() {
			continue
		}
		entry, err := t.fetchFrom(node, key)
		if err == nil {
			return entry, nil
		}
	}
	return nil, fmt.Errorf("cluster: artifact %s: %w", key, os.ErrNotExist)
}

func (t *PeerTier) fetchFrom(node Node, key string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, node.URL+"/v1/artifacts/"+key, nil)
	if err != nil {
		return nil, err
	}
	if t.rt.token != "" {
		req.Header.Set(TokenHeader, t.rt.token)
	}
	resp, err := t.rt.fetch.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: artifact %s on %s: status %d: %w",
			key, node.ID, resp.StatusCode, os.ErrNotExist)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes))
}

// Store is a no-op: a peer's artifact store is its own business — entries
// propagate by being fetched, never pushed.
func (t *PeerTier) Store(string, []byte) error { return nil }
