// Package cluster turns a set of fold3dd processes into a fleet: a static
// peer list, a consistent-hash ring that assigns every request fingerprint
// an owner node, an HTTP proxy path so any node can accept any POST, and a
// network cache tier that fetches artifacts from peers over the same
// versioned+checksummed wire format the disk spill uses.
//
// The fleet changes nothing about results. Cache keys and job fingerprints
// are pure functions of the normalized request (the PR-4 determinism
// contract), so which node runs a job — or which peer serves an artifact —
// can never change a byte of output. The ring only decides placement.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/url"
	"regexp"
	"sort"
	"strings"
)

// ringReplicas is the number of virtual points each node contributes to
// the ring. More points smooth the key distribution between nodes; 64 is
// plenty for the single-digit fleet sizes a static peer list targets.
const ringReplicas = 64

// nodeIDPattern restricts node IDs to lowercase alphanumerics and
// underscores — no dashes — so a node-prefixed job ID like
// "east_1-job-000042" always splits unambiguously at the first dash.
var nodeIDPattern = regexp.MustCompile(`^[a-z0-9_]+$`)

// Node is one member of the static fleet.
type Node struct {
	// ID names the node; it prefixes job IDs minted by the node and must
	// match ^[a-z0-9_]+$ (and not be "job" or "batch", which are reserved
	// by the ID grammar).
	ID string
	// URL is the node's base URL, e.g. "http://10.0.0.5:8080".
	URL string
}

// Ring is an immutable consistent-hash ring over the fleet's nodes. The
// owner of a key depends only on the set of node IDs — never on the order
// the peer list was written in — so every node computes identical routing
// from its own copy of the same fleet definition.
type Ring struct {
	self   string
	nodes  map[string]Node // by ID
	points []ringPoint     // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

// New builds the ring. self must be one of the node IDs; node IDs must be
// unique, well-formed, and carry parseable URLs.
func New(self string, nodes []Node) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty node list")
	}
	r := &Ring{self: self, nodes: make(map[string]Node, len(nodes))}
	for _, n := range nodes {
		if !nodeIDPattern.MatchString(n.ID) {
			return nil, fmt.Errorf("cluster: node id %q: want ^[a-z0-9_]+$", n.ID)
		}
		if n.ID == "job" || n.ID == "batch" {
			return nil, fmt.Errorf("cluster: node id %q is reserved", n.ID)
		}
		if _, dup := r.nodes[n.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		u, err := url.Parse(n.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: node %q: bad url %q", n.ID, n.URL)
		}
		n.URL = strings.TrimRight(n.URL, "/")
		r.nodes[n.ID] = n
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n.ID, i), id: n.ID})
		}
	}
	if _, ok := r.nodes[self]; !ok {
		return nil, fmt.Errorf("cluster: self id %q not in node list", self)
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit hash collision between virtual points is vanishingly
		// unlikely; break it by ID so the ring stays order-independent.
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// pointHash places virtual point i of a node on the ring. SHA-256 keeps
// the placement stable across processes, architectures and Go versions —
// the same guarantee the pipeline hasher gives cache keys.
func pointHash(id string, i int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("node:%s:%d", id, i)))
	return binary.LittleEndian.Uint64(sum[:8])
}

// keyHash places a cache key / request fingerprint on the ring.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte("key:" + key))
	return binary.LittleEndian.Uint64(sum[:8])
}

// Self returns this node's ID.
func (r *Ring) Self() string { return r.self }

// SelfNode returns this node's full entry.
func (r *Ring) SelfNode() Node { return r.nodes[r.self] }

// Owner returns the node that owns key: the first virtual point at or
// clockwise after the key's hash. Deterministic, and stable under
// peer-list reordering.
func (r *Ring) Owner(key string) Node {
	return r.nodes[r.points[r.search(key)].id]
}

// Owns reports whether this node owns key.
func (r *Ring) Owns(key string) bool { return r.Owner(key).ID == r.self }

// search returns the index of the first point at or after the key's hash,
// wrapping to 0 past the last point.
func (r *Ring) search(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Sequence returns every node in the key's preference order: the owner
// first, then each distinct successor clockwise around the ring. A cache
// fetch walks this order so the artifact's most likely home is tried
// first.
func (r *Ring) Sequence(key string) []Node {
	seq := make([]Node, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	for i, start := 0, r.search(key); len(seq) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			seq = append(seq, r.nodes[p.id])
		}
	}
	return seq
}

// Peers returns every node except self, sorted by ID for deterministic
// iteration.
func (r *Ring) Peers() []Node {
	peers := make([]Node, 0, len(r.nodes)-1)
	for id, n := range r.nodes {
		if id != r.self {
			peers = append(peers, n)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	return peers
}

// NodeByID looks a node up by ID.
func (r *Ring) NodeByID(id string) (Node, bool) {
	n, ok := r.nodes[id]
	return n, ok
}

// Len returns the fleet size.
func (r *Ring) Len() int { return len(r.nodes) }

// ParsePeers parses the -peers flag format: a comma-separated list of
// id=url entries naming the FULL fleet, self included — every node is
// started with the same value, e.g.
//
//	-peers a=http://127.0.0.1:8080,b=http://127.0.0.1:8081
func ParsePeers(s string) ([]Node, error) {
	var nodes []Node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("cluster: peer entry %q: want id=url", part)
		}
		nodes = append(nodes, Node{ID: id, URL: u})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return nodes, nil
}
