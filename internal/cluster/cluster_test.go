package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fold3d/internal/jobs"
	"fold3d/internal/pipeline"
)

func testNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: fmt.Sprintf("n%d", i), URL: fmt.Sprintf("http://127.0.0.1:%d", 8000+i)}
	}
	return nodes
}

// TestOwnerStableUnderReordering is the routing property test: the
// consistent-hash owner of a key is a function of the node ID set only —
// shuffling the peer-list order (as different nodes' -peers flags might)
// never moves a single key.
func TestOwnerStableUnderReordering(t *testing.T) {
	nodes := testNodes(5)
	ref, err := New("n0", nodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 200)
	for i := range keys {
		h := pipeline.NewHasher()
		h.Int(i)
		keys[i] = string(h.Sum())
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Node(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r, err := New("n3", shuffled)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if got, want := r.Owner(k).ID, ref.Owner(k).ID; got != want {
				t.Fatalf("trial %d: owner of %q moved %s -> %s under reordering", trial, k, want, got)
			}
			if gotSeq, wantSeq := fmt.Sprint(r.Sequence(k)), fmt.Sprint(ref.Sequence(k)); gotSeq != wantSeq {
				t.Fatalf("trial %d: preference order of %q changed under reordering", trial, k)
			}
		}
	}
}

// TestOwnerDistribution sanity-checks that virtual replicas spread keys
// across the fleet instead of piling onto one node.
func TestOwnerDistribution(t *testing.T) {
	r, err := New("n0", testNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 1000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i)).ID]++
	}
	for id, c := range counts {
		if c < n/16 {
			t.Errorf("node %s owns only %d/%d keys — distribution badly skewed", id, c, n)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d of 4 nodes own any keys", len(counts))
	}
}

// TestSequenceCoversFleet pins the fetch preference order: every node
// exactly once, owner first.
func TestSequenceCoversFleet(t *testing.T) {
	r, err := New("n0", testNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	seq := r.Sequence("somekey")
	if len(seq) != 4 {
		t.Fatalf("Sequence returned %d nodes, want 4", len(seq))
	}
	if seq[0].ID != r.Owner("somekey").ID {
		t.Fatalf("Sequence[0] = %s, want the owner %s", seq[0].ID, r.Owner("somekey").ID)
	}
	seen := map[string]bool{}
	for _, n := range seq {
		if seen[n.ID] {
			t.Fatalf("node %s appears twice in Sequence", n.ID)
		}
		seen[n.ID] = true
	}
}

func TestRingValidation(t *testing.T) {
	cases := []struct {
		name  string
		self  string
		nodes []Node
	}{
		{"empty", "a", nil},
		{"self missing", "ghost", testNodes(2)},
		{"bad id dash", "a", []Node{{ID: "a", URL: "http://x:1"}, {ID: "has-dash", URL: "http://y:1"}}},
		{"bad id upper", "a", []Node{{ID: "A", URL: "http://x:1"}}},
		{"reserved job", "job", []Node{{ID: "job", URL: "http://x:1"}}},
		{"reserved batch", "batch", []Node{{ID: "batch", URL: "http://x:1"}}},
		{"duplicate", "a", []Node{{ID: "a", URL: "http://x:1"}, {ID: "a", URL: "http://y:1"}}},
		{"bad url", "a", []Node{{ID: "a", URL: "not a url"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.self, tc.nodes); err == nil {
				t.Fatalf("New(%q, %v) accepted", tc.self, tc.nodes)
			}
		})
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers("a=http://127.0.0.1:8080, b=http://127.0.0.1:8081,")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].ID != "a" || nodes[1].URL != "http://127.0.0.1:8081" {
		t.Fatalf("ParsePeers = %+v", nodes)
	}
	for _, bad := range []string{"", "nourl", "=http://x", "a="} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestOwnerOfID(t *testing.T) {
	ring, err := New("east", []Node{
		{ID: "east", URL: "http://127.0.0.1:8080"},
		{ID: "west", URL: "http://127.0.0.1:8081"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(ring, "")
	if n, ok := rt.OwnerOfID("west-job-000042"); !ok || n.ID != "west" {
		t.Fatalf("OwnerOfID(west-job-000042) = %v %v", n, ok)
	}
	if n, ok := rt.OwnerOfID("east-batch-000001"); !ok || n.ID != "east" {
		t.Fatalf("OwnerOfID(east-batch-000001) = %v %v", n, ok)
	}
	// Legacy single-node IDs have no node prefix.
	if _, ok := rt.OwnerOfID("job-000001"); ok {
		t.Fatal("OwnerOfID claimed a legacy job ID")
	}
	if _, ok := rt.OwnerOfID("nodash"); ok {
		t.Fatal("OwnerOfID claimed an un-dashed ID")
	}
}

// clusterArtifact is a minimal pipeline.Artifact for peer-tier tests.
type clusterArtifact struct {
	Vals []int
}

// CloneArtifact deep-copies the artifact (pipeline.Artifact contract).
func (a *clusterArtifact) CloneArtifact() pipeline.Artifact {
	return &clusterArtifact{Vals: append([]int(nil), a.Vals...)}
}

func clusterCodec() *pipeline.Codec {
	return &pipeline.Codec{
		Kind:    "clustertest",
		Version: 1,
		Encode:  func(a pipeline.Artifact) ([]byte, error) { return json.Marshal(a.(*clusterArtifact)) },
		Decode: func(b []byte) (pipeline.Artifact, error) {
			var a clusterArtifact
			if err := json.Unmarshal(b, &a); err != nil {
				return nil, err
			}
			return &a, nil
		},
	}
}

// newTierFixture boots a fake peer serving the given artifact responses
// under /v1/artifacts/ and returns a PeerTier whose ring contains self and
// that peer.
func newTierFixture(t *testing.T, token string, entries map[string][]byte) (*PeerTier, *httptest.Server) {
	t.Helper()
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if token != "" && r.Header.Get(TokenHeader) != token {
			w.WriteHeader(http.StatusUnauthorized)
			return
		}
		key := strings.TrimPrefix(r.URL.Path, "/v1/artifacts/")
		entry, ok := entries[key]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		_, _ = w.Write(entry)
	}))
	t.Cleanup(peer.Close)
	ring, err := New("self", []Node{
		{ID: "self", URL: "http://127.0.0.1:1"}, // never dialed: Fetch skips self
		{ID: "peer", URL: peer.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewRouter(ring, token).Tier(), peer
}

// TestPeerTierFetchRoundTrip pins the happy path end to end through a real
// HTTP hop: the entry a peer serves restores byte-identically through the
// cache, counted as a peer hit.
func TestPeerTierFetchRoundTrip(t *testing.T) {
	codec := clusterCodec()
	entry, err := pipeline.EncodeEntry(&clusterArtifact{Vals: []int{3, 1, 4}}, codec)
	if err != nil {
		t.Fatal(err)
	}
	tier, _ := newTierFixture(t, "sekrit", map[string][]byte{"abc123": entry})

	cache := pipeline.NewCache(pipeline.CacheOptions{Tiers: []pipeline.CacheTier{tier}})
	got, ok := cache.Get("abc123", codec)
	if !ok {
		t.Fatal("peer entry not fetched")
	}
	if v := got.(*clusterArtifact).Vals; len(v) != 3 || v[0] != 3 || v[2] != 4 {
		t.Fatalf("peer round trip mangled artifact: %v", v)
	}
	if st := cache.Stats(); st.PeerHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want one peer hit", st)
	}
}

// TestPeerTierCorruptBodyIsMiss mirrors the disk-spill corruption test
// over the network: a peer serving truncated or bit-flipped bytes yields a
// cache miss (ErrCacheCorrupt semantics), never an error or a wrong
// artifact.
func TestPeerTierCorruptBodyIsMiss(t *testing.T) {
	codec := clusterCodec()
	entry, err := pipeline.EncodeEntry(&clusterArtifact{Vals: []int{7}}, codec)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), entry...)
	flipped[len(flipped)-1] ^= 0xff
	cases := map[string][]byte{
		"truncated": entry[:len(entry)/3],
		"bitflip":   flipped,
		"empty":     {},
		"garbage":   []byte("HTTP error page masquerading as an artifact"),
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			tier, _ := newTierFixture(t, "", map[string][]byte{"k1": body})
			cache := pipeline.NewCache(pipeline.CacheOptions{Tiers: []pipeline.CacheTier{tier}})
			if _, ok := cache.Get("k1", codec); ok {
				t.Fatal("corrupt peer body served as an artifact")
			}
			if st := cache.Stats(); st.Misses != 1 || st.PeerHits != 0 {
				t.Fatalf("stats = %+v, want a clean miss", st)
			}
		})
	}
}

// TestPeerTierMissingAndUnauthorized pins the remaining miss paths: a 404
// and a bad token are both just misses.
func TestPeerTierMissingAndUnauthorized(t *testing.T) {
	codec := clusterCodec()
	tier, _ := newTierFixture(t, "sekrit", map[string][]byte{})
	cache := pipeline.NewCache(pipeline.CacheOptions{Tiers: []pipeline.CacheTier{tier}})
	if _, ok := cache.Get("nothere", codec); ok {
		t.Fatal("404 served as a hit")
	}

	entry, err := pipeline.EncodeEntry(&clusterArtifact{Vals: []int{1}}, codec)
	if err != nil {
		t.Fatal(err)
	}
	goodTier, _ := newTierFixture(t, "sekrit", map[string][]byte{"k": entry})
	// Rebuild the tier's router with the wrong token.
	wrongRing := goodTier.rt.ring
	wrong := NewRouter(wrongRing, "wrong").Tier()
	wrongCache := pipeline.NewCache(pipeline.CacheOptions{Tiers: []pipeline.CacheTier{wrong}})
	if _, ok := wrongCache.Get("k", codec); ok {
		t.Fatal("unauthorized fetch served as a hit")
	}
}

// TestRoutingFingerprintIncludesPlacer pins the routing-identity contract
// of the placement-backend axis: the ring key of a request (its
// jobs.Request.Fingerprint) must separate requests that differ only in
// placer, so two backends never collapse onto one ring owner or cache
// identity — while the empty placer normalizes to the default backend and
// scheduling-only knobs (Workers, Tenant) stay excluded.
func TestRoutingFingerprintIncludesPlacer(t *testing.T) {
	base := jobs.Request{Experiments: []string{"table2"}, Scale: 2000, Seed: 7}
	force := base
	force.Placer = "force"
	analytical := base
	analytical.Placer = "analytical"

	if base.Fingerprint() != force.Fingerprint() {
		t.Error("empty placer must normalize to the default backend's fingerprint")
	}
	if force.Fingerprint() == analytical.Fingerprint() {
		t.Error("requests differing only in placer share a routing fingerprint")
	}
	sched := analytical
	sched.Workers = 7
	sched.Tenant = "acme"
	if sched.Fingerprint() != analytical.Fingerprint() {
		t.Error("Workers/Tenant leaked into the routing fingerprint")
	}

	// The distinct fingerprints are distinct ring keys (the same strings a
	// fleet node hands to Owner when routing a POST): across enough seeds
	// the two backends' keys must land on different owners at least once —
	// if the ring collapsed them, every seed would agree.
	r, err := New("n0", testNodes(8))
	if err != nil {
		t.Fatal(err)
	}
	split := false
	for seed := uint64(1); seed <= 32 && !split; seed++ {
		f := base
		f.Seed = seed
		f.Placer = "force"
		a := f
		a.Placer = "analytical"
		split = r.Owner(f.Fingerprint()).ID != r.Owner(a.Fingerprint()).ID
	}
	if !split {
		t.Error("force and analytical requests always share a ring owner — the ring is not seeing the placer axis")
	}
}
