// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DAC 2014), plus the ablation benches DESIGN.md calls out.
// Each bench regenerates its experiment end-to-end and reports the headline
// numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. EXPERIMENTS.md records the
// paper-vs-measured comparison for every entry.
package fold3drepo

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"fold3d/internal/exp"
	"fold3d/internal/flow"
	"fold3d/internal/pipeline"
	"fold3d/internal/place"
	"fold3d/internal/t2"
	"fold3d/internal/thermal"
)

func cfg() exp.Config { return exp.DefaultConfig() }

// BenchmarkTable1Interconnect regenerates the 3D interconnect settings table.
func BenchmarkTable1Interconnect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Table1()
		if len(t.Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable2FloorplanBenefit builds the 2D, core/cache and core/core
// chips (paper Table 2) and reports the 3D power deltas.
func BenchmarkTable2FloorplanBenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Table2(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		if d, ok := t.Diff("total power", 1); ok {
			b.ReportMetric(d, "corecache_power_%")
		}
		if d, ok := t.Diff("total power", 2); ok {
			b.ReportMetric(d, "corecore_power_%")
		}
		if d, ok := t.Diff("footprint", 1); ok {
			b.ReportMetric(d, "corecache_footprint_%")
		}
	}
}

// BenchmarkTable3FoldingCriteria profiles the 2D blocks and scores the §4.1
// folding criteria.
func BenchmarkTable3FoldingCriteria(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.Table3(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Block == "SPC" {
				b.ReportMetric(r.TotalPowerPct, "spc_power_%")
				b.ReportMetric(r.NetPowerPct, "spc_netpower_%")
			}
			if r.Block == "L2D" {
				b.ReportMetric(r.NetPowerPct, "l2d_netpower_%")
			}
		}
	}
}

// BenchmarkTable4FoldL2D folds the memory-dominated L2 data bank.
func BenchmarkTable4FoldL2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fc, err := exp.Table4(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fc.FootprintPct, "footprint_%")
		b.ReportMetric(fc.PowerPct, "power_%")
		b.ReportMetric(fc.BuffersPct, "buffers_%")
	}
}

// BenchmarkTable5FullChip builds the dual-Vth full-chip comparison (paper
// Table 5): 2D vs 3D without folding vs 3D with folding (F2F).
func BenchmarkTable5FullChip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Table5(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		if d, ok := t.Diff("total power", 2); ok {
			b.ReportMetric(d, "fold_f2f_power_%") // paper: -20.3%
		}
		if d, ok := t.Diff("total power", 1); ok {
			b.ReportMetric(d, "nofold_power_%") // paper: -13.7%
		}
		if v, ok := t.Get("HVT fraction"); ok {
			b.ReportMetric(v[2], "fold_hvt_%") // paper: 94.0%
		}
	}
}

// BenchmarkFigure2FoldCCX folds the crossbar naturally and sweeps forced
// partitions with more TSVs.
func BenchmarkFigure2FoldCCX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure2(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Natural.PowerPct, "natural_power_%")               // paper: -32.8%
		b.ReportMetric(float64(r.Natural.R3D.Stats.NumTSV), "tsvs")         // paper: 4
		b.ReportMetric(r.Sweep[len(r.Sweep)-1].PowerPct, "max_tsv_power_%") // paper: -23.4%
	}
}

// BenchmarkFigure3SecondLevelFold folds a SPARC core's FUBs individually.
func BenchmarkFigure3SecondLevelFold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure3(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SecondLevel.PowerPct, "vs_unfolded_power_%")   // paper: -5.1% vs unfolded 3D, -21.2% vs 2D
		b.ReportMetric(r.SecondLevel.WirelengthPct, "vs_unfolded_wl_%") // paper: -9.2%
	}
}

// BenchmarkFigure5F2FViaPlacement runs the routed F2F via placer against the
// midpoint baseline.
func BenchmarkFigure5F2FViaPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure5(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.RoutedVias), "vias")
		b.ReportMetric(float64(r.RoutedMaxPile), "routed_pile")
		b.ReportMetric(float64(r.MidpointMaxPile), "midpoint_pile")
	}
}

// BenchmarkFigure6BondingFootprint compares F2B and F2F folds of L2T/L2D.
func BenchmarkFigure6BondingFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure6(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Block == "L2T0" {
				b.ReportMetric(row.FootprintPct, "l2t_f2f_footprint_%") // paper: -2.6%
				b.ReportMetric(row.PowerPct, "l2t_f2f_power_%")         // paper: -4.1%
			}
			if row.Block == "L2D0" {
				b.ReportMetric(row.FootprintPct, "l2d_f2f_footprint_%") // paper: -6.3%
			}
		}
	}
}

// BenchmarkFigure7BondingPower sweeps L2T partitions under both bondings.
func BenchmarkFigure7BondingPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure7(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		wins := 0.0
		if r.F2FWinsAll {
			wins = 1
		}
		b.ReportMetric(wins, "f2f_wins_all")           // paper: yes
		b.ReportMetric(r.MaxGainPct, "max_f2f_gain_%") // paper: -16.2%
	}
}

// BenchmarkFigure8Layouts builds and renders all five design styles.
func BenchmarkFigure8Layouts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure8(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.SVGs)), "renders")
	}
}

// BenchmarkDualVthAblation measures the RVT->DVT saving per style (paper
// §6.2: 9.5% on 2D, 11.4% on the folded 3D design).
func BenchmarkDualVthAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationDualVth(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Style.String() {
			case "2D":
				b.ReportMetric(row.SavingPct, "dvt_2d_%")
			case "fold-F2F":
				b.ReportMetric(row.SavingPct, "dvt_fold_%")
				b.ReportMetric(row.HVTPct, "fold_hvt_%")
			}
		}
	}
}

// BenchmarkAblationMacroHoles contrasts the paper's supply/demand holes with
// Kraftwerk2-style demand reduction.
func BenchmarkAblationMacroHoles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationMacroMode(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.HoleDispUm, "hole_disp_um")
		b.ReportMetric(r.DemandDispUm, "demand_disp_um")
	}
}

// BenchmarkAblationFoldingCriteria folds a criteria-rejected block anyway.
func BenchmarkAblationFoldingCriteria(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationFoldingCriteria(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FailingGain, "rejected_gain_%")
		b.ReportMetric(r.PassingGain, "passing_gain_%")
	}
}

// BenchmarkAblationViaPlacement isolates the routed-vs-midpoint via-placer
// comparison (paper §5.1's motivation).
func BenchmarkAblationViaPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure5(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.MidpointMaxPile-r.RoutedMaxPile), "pile_reduction")
	}
}

// BenchmarkThermalStudy runs the §7 future-work thermal comparison across
// design styles.
func BenchmarkThermalStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.ThermalStudy(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			switch row.Style.String() {
			case "2D":
				b.ReportMetric(row.TMaxC, "tmax_2d_C")
			case "fold-F2F":
				b.ReportMetric(row.TMaxC, "tmax_fold_f2f_C")
			case "fold-F2B":
				b.ReportMetric(row.TMaxC, "tmax_fold_f2b_C")
			}
		}
	}
}

// BenchmarkAblationTSVCoupling measures the §7 future-work TSV-to-wire
// coupling power penalty on a TSV-dense fold.
func BenchmarkAblationTSVCoupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationTSVCoupling(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PowerPct, "coupling_power_%")
	}
}

// BenchmarkFigure4DesignFiles emits the §5.1 merged two-die design files.
func BenchmarkFigure4DesignFiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Figure4(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Nets3DCount), "nets3d")
		b.ReportMetric(float64(len(r.LEF)), "lef_bytes")
	}
}

// BenchmarkAblationRSMT compares statistical wirelength estimation against
// real rectilinear Steiner trees on the L2T implementation.
func BenchmarkAblationRSMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.AblationRSMT(context.Background(), cfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WirelenPct, "rsmt_wl_%")
		b.ReportMetric(r.PowerPct, "rsmt_power_%")
	}
}

// buildChipScales is the scale axis of the BuildChip benchmarks: the
// denominators fed to t2.Generate, largest (coarsest netlist) first.
// Smaller scale = more cells; scripts/bench.sh sweeps these into the
// BENCH_PR8.json scale curve.
var buildChipScales = []int{1000, 300, 100}

// peakRSSkB reads the process peak resident set (VmHWM) from
// /proc/self/status. Zero on hosts without procfs (the metric is then
// simply omitted). The high-water mark is process-wide and monotone, so
// across sub-benchmarks it reflects the largest scale run so far — which
// is exactly the peak the memory budget cares about.
func peakRSSkB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if v, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			f := strings.Fields(v)
			if len(f) > 0 {
				kb, _ := strconv.ParseFloat(f[0], 64)
				return kb
			}
		}
	}
	return 0
}

// benchBuildChip builds the folded-F2B chip end to end at the given
// worker count and t2 scale. The flow folds blocks in place, so each
// iteration regenerates the design (like every exp generator does per
// style). Reports the design's cell count and the process peak RSS so
// the scale sweep pairs wall-clock with memory.
func benchBuildChip(b *testing.B, workers, scale int) {
	b.Helper()
	benchBuildChipCfg(b, workers, scale, nil)
}

// benchBuildChipPlacer is benchBuildChip with an explicit placement
// backend (empty means the default, force).
func benchBuildChipPlacer(b *testing.B, workers, scale int, placer string) {
	b.Helper()
	benchBuildChipCfg(b, workers, scale, func(c *flow.Config) { c.Placer = placer })
}

// benchBuildChipCfg is the common chip-build benchmark body with a config
// hook applied after the defaults.
func benchBuildChipCfg(b *testing.B, workers, scale int, mut func(*flow.Config)) {
	b.Helper()
	fcfg := flow.DefaultConfig()
	fcfg.Workers = workers
	if mut != nil {
		mut(&fcfg)
	}
	cells := 0
	for i := 0; i < b.N; i++ {
		d, err := t2.Generate(t2.Config{Scale: float64(scale), Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		cells = 0
		for _, blk := range d.Blocks {
			cells += len(blk.Cells)
		}
		r, err := flow.New(d, fcfg).BuildChipContext(context.Background(), t2.StyleFoldF2B)
		if err != nil {
			b.Fatal(err)
		}
		if r.Power.TotalMW <= 0 {
			b.Fatal("no power report")
		}
	}
	b.ReportMetric(float64(cells), "cells")
	if kb := peakRSSkB(); kb > 0 {
		b.ReportMetric(kb, "peak_rss_kB")
	}
}

// thermalSolveGrids is the grid-size axis of BenchmarkThermalSolve,
// largest last: scripts/bench.sh gates the multigrid-vs-Gauss-Seidel
// speedup on the largest entry.
var thermalSolveGrids = []int{24, 48, 96, 192}

// benchThermalProblem builds a deterministic two-die F2B-like synthetic
// thermal problem: random per-tile power, a uniform adhesive-bond vertical
// conductance, and TSV conductance spikes at pseudo-random tiles.
func benchThermalProblem(n int) (pw [2][]float64, vertK []float64) {
	const tileAreaM2 = 5e-8
	state := uint64(12345)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	tiles := n * n
	pw[0] = make([]float64, tiles)
	pw[1] = make([]float64, tiles)
	for i := 0; i < tiles; i++ {
		w := 0.012 * next()
		pw[0][i] = w * 0.6
		pw[1][i] = w * 0.4
	}
	vertK = make([]float64, tiles)
	for i := range vertK {
		vertK[i] = 9000 * tileAreaM2
	}
	for s := 0; s < n; s++ {
		i := int(next() * float64(tiles))
		if i >= tiles {
			i = tiles - 1
		}
		vertK[i] += 2.4e-5 * 30
	}
	return pw, vertK
}

// BenchmarkThermalSolve compares the multigrid engine (alg=mg) against the
// dense Gauss-Seidel reference solver (alg=gs) on the same synthetic
// two-die problem at the same 1e-4 tolerance, one sub-benchmark per grid
// size:
//
//	go test -bench 'BenchmarkThermalSolve/grid=192'
//
// scripts/bench.sh records both rows into BENCH_PR10.json and gates the
// mg-vs-gs speedup (>=10x at the largest grid).
func BenchmarkThermalSolve(b *testing.B) {
	const tileAreaM2 = 5e-8
	p := thermal.DefaultParams()
	for _, n := range thermalSolveGrids {
		n := n
		pw, vertK := benchThermalProblem(n)
		b.Run(fmt.Sprintf("grid=%d/alg=mg", n), func(b *testing.B) {
			eng := thermal.NewEngine()
			var tmax float64
			for i := 0; i < b.N; i++ {
				if err := eng.ReinitGrid(n, n, 2, tileAreaM2, p); err != nil {
					b.Fatal(err)
				}
				for iy := 0; iy < n; iy++ {
					for ix := 0; ix < n; ix++ {
						t := iy*n + ix
						eng.AddPower(0, ix, iy, pw[0][t])
						eng.AddPower(1, ix, iy, pw[1][t])
					}
				}
				eng.SetUniformVertK(vertK[0])
				for iy := 0; iy < n; iy++ {
					for ix := 0; ix < n; ix++ {
						if dk := vertK[iy*n+ix] - vertK[0]; dk != 0 {
							eng.AddVertKAt(ix, iy, dk)
						}
					}
				}
				r, err := eng.Solve()
				if err != nil {
					b.Fatal(err)
				}
				tmax = r.TMaxC
			}
			b.ReportMetric(tmax, "tmax_C")
		})
		b.Run(fmt.Sprintf("grid=%d/alg=gs", n), func(b *testing.B) {
			var tmax float64
			for i := 0; i < b.N; i++ {
				// The reference oracle at the engine's tolerance; the root
				// package is deliberately off lint's ThermalEngineOnly list
				// so this baseline stays benchmarkable.
				r := thermal.SolveReferenceTol(pw, n, n, 2, tileAreaM2, vertK, p, 1e-4, 4_000_000)
				tmax = r.TMaxC
			}
			b.ReportMetric(tmax, "tmax_C")
		})
	}
}

// runAllNames is the BenchmarkRunAll experiment subset: together these
// three generators implement chips in all five design styles (table2: 2D,
// core/cache, core/core; table5: 2D, core/core, fold-F2F; fig8: all five),
// with heavy overlap — exactly the workload the shared artifact cache is
// built for.
var runAllNames = []string{"table2", "table5", "fig8"}

// benchRunAllOnce runs the RunAll subset against the given cache.
func benchRunAllOnce(b *testing.B, cache *pipeline.Cache) {
	b.Helper()
	c := exp.DefaultConfig()
	c.Cache = cache
	results, err := exp.RunAll(context.Background(), c, runAllNames, nil)
	if err != nil {
		b.Fatal(err)
	}
	if len(results) != len(runAllNames) {
		b.Fatalf("got %d results, want %d", len(results), len(runAllNames))
	}
}

// BenchmarkRunAllCold is the no-reuse baseline: every iteration gets a
// fresh cache, so each RunAll only benefits from the sharing inside its own
// run (as a first-ever invocation would).
func BenchmarkRunAllCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRunAllOnce(b, pipeline.NewCache(pipeline.CacheOptions{}))
	}
}

// BenchmarkRunAllShared measures the steady state of a shared artifact
// cache: the cache is warmed once outside the timer, then every timed
// iteration restores each block instead of re-implementing it. Compare
// against BenchmarkRunAllCold for the reuse win (acceptance floor: 1.3x);
// results are byte-identical either way (TestCacheEquivalence).
func BenchmarkRunAllShared(b *testing.B) {
	cache := pipeline.NewCache(pipeline.CacheOptions{})
	benchRunAllOnce(b, cache)
	stores := cache.Stats().Stores
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRunAllOnce(b, cache)
	}
	b.StopTimer()
	st := cache.Stats()
	if st.Stores != stores {
		b.Fatalf("warm iterations recomputed %d blocks", st.Stores-stores)
	}
	b.ReportMetric(float64(st.Hits)/float64(b.N), "restores/op")
}

// BenchmarkBuildChip compares the registered placement backends head to
// head on the tier-1 chip build (Workers=1, scale 1000): one sub-benchmark
// per backend, so
//
//	go test -bench 'BenchmarkBuildChip/placer'
//
// reports the force-vs-analytical cost side by side (scripts/bench.sh
// records these rows into BENCH_PR9.json).
func BenchmarkBuildChip(b *testing.B) {
	for _, name := range place.BackendNames() {
		name := name
		b.Run("placer="+name, func(b *testing.B) { benchBuildChipPlacer(b, 1, 1000, name) })
	}
	// The thermal-planning overhead: the same tier-1 build with the
	// multigrid solver and thermal-via insertion in the loop. Compare
	// against placer=force (the thermal-off baseline) for the added cost
	// (scripts/bench.sh gates the ratio into BENCH_PR10.json).
	b.Run("thermal=on", func(b *testing.B) {
		benchBuildChipCfg(b, 1, 1000, func(c *flow.Config) {
			c.Thermal = flow.ThermalConfig{Enable: true}
		})
	})
}

// BenchmarkBuildChipSequential is the Workers=1 baseline of the chip
// build, one sub-benchmark per t2 scale (scale 1000 is the tier-1 size;
// smaller scales grow the netlist toward the scaling-pass regime).
func BenchmarkBuildChipSequential(b *testing.B) {
	for _, s := range buildChipScales {
		s := s
		b.Run(fmt.Sprintf("scale=%d", s), func(b *testing.B) { benchBuildChip(b, 1, s) })
	}
}

// BenchmarkBuildChipParallel fans the per-block implementation out across
// one worker per CPU; compare against BenchmarkBuildChipSequential at the
// same scale for the speedup (results are byte-identical either way).
func BenchmarkBuildChipParallel(b *testing.B) {
	for _, s := range buildChipScales {
		s := s
		b.Run(fmt.Sprintf("scale=%d", s), func(b *testing.B) { benchBuildChip(b, 0, s) })
	}
}
