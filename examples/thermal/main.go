// Thermal study (the paper's §7 future work): fold the L2 tag block, then
// solve the steady-state temperature field of the 2D implementation and of
// the two-tier stacks under both bonding styles. Stacking halves the
// footprint of the same power — the classic 3D-IC thermal tax — while the
// vertical coupling of the bond (adhesive + TSVs for F2B, full-face metal
// for F2F) decides how well the buried tier reaches the heat sink.
//
//	go run ./examples/thermal
package main

import (
	"fmt"
	"log"

	"fold3d/internal/extract"
	"fold3d/internal/thermal"
	"fold3d/pkg/fold3d"
)

func main() {
	design, err := fold3d.Generate(fold3d.Options{Only: []string{"L2T0"}})
	if err != nil {
		log.Fatal(err)
	}
	l2t := design.Blocks["L2T0"]
	params := thermal.DefaultParams()
	fmt.Printf("ambient %.0f C, heat sink on the top die's backside\n\n", params.AmbientC)

	// 2D baseline.
	fl := fold3d.NewFlow(design, fold3d.FlowConfig{})
	flat := l2t.Clone()
	if _, err := fl.ImplementBlock(flat, 0.63); err != nil {
		log.Fatal(err)
	}
	t2d, err := thermal.AnalyzeBlock(flat, design.Scale, extract.F2B, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2D:        Tmax %6.1f C, Tavg %6.1f C\n", t2d.TMaxC, t2d.TAvgC)

	// Folded stacks, both bonding styles.
	for _, bond := range []fold3d.Bonding{fold3d.F2B, fold3d.F2F} {
		cfg := fold3d.DefaultFlowConfig()
		cfg.Bond = bond
		flb := fold3d.NewFlow(design, cfg)
		b := l2t.Clone()
		if _, _, err := flb.FoldAndImplement(b, fold3d.FoldOptions{Mode: fold3d.FoldMinCut, Seed: 5}, 0.63); err != nil {
			log.Fatal(err)
		}
		tr, err := thermal.AnalyzeBlock(b, design.Scale, bond, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("3D %s:    Tmax %6.1f C, Tavg %6.1f C (bottom die %6.1f, top die %6.1f)\n",
			bond, tr.TMaxC, tr.TAvgC, tr.TMaxPerDie[0], tr.TMaxPerDie[1])
	}
	fmt.Println("\nthe stack runs hotter than 2D despite saving power: the same watts")
	fmt.Println("flow through half the footprint, and the buried die sees the sink")
	fmt.Println("only through the die-to-die bond")
}
