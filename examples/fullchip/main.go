// Full chip (the paper's §6 / Table 5 / Figure 8): build the complete
// 46-block OpenSPARC T2 in three design styles — flat 2D, 3D core/cache
// stacking without folding, and 3D with the five block types folded under
// face-to-face bonding — all with the dual-Vth library, and print the
// paper's comparison table. This is the experiment behind the paper's
// headline 20.3% power saving.
//
//	go run ./examples/fullchip
package main

import (
	"fmt"
	"log"
	"time"

	"fold3d/pkg/fold3d"
)

func main() {
	styles := []fold3d.Style{fold3d.Style2D, fold3d.StyleCoreCache, fold3d.StyleFoldF2F}
	var results []*fold3d.ChipResult

	for _, style := range styles {
		// Each style gets a fresh design database (the flow implements
		// blocks in place).
		design, err := fold3d.Generate(fold3d.Options{})
		if err != nil {
			log.Fatal(err)
		}
		cfg := fold3d.DefaultFlowConfig()
		cfg.UseHVT = true // dual-Vth, as in the paper's Table 5
		fl := fold3d.NewFlow(design, cfg)

		t0 := time.Now()
		r, err := fl.BuildChip(style)
		if err != nil {
			log.Fatalf("%s: %v", style, err)
		}
		results = append(results, r)
		fmt.Printf("built %-11s in %7s: %5.1f mm2, %5d cells, power %6.2f W\n",
			style.String(), time.Since(t0).Round(time.Millisecond),
			r.Stats.FootprintMM2, r.Stats.NumCells, r.Power.TotalMW/1e3)
	}

	base := results[0]
	fmt.Println("\nmetric            2D         3D w/o fold     3D w/ fold (F2F)")
	row := func(name string, f func(*fold3d.ChipResult) float64) {
		v0 := f(base)
		fmt.Printf("%-14s %10.2f", name, v0)
		for _, r := range results[1:] {
			v := f(r)
			fmt.Printf(" %10.2f (%+5.1f%%)", v, 100*(v/v0-1))
		}
		fmt.Println()
	}
	row("footprint mm2", func(r *fold3d.ChipResult) float64 { return r.Stats.FootprintMM2 })
	row("wirelength m", func(r *fold3d.ChipResult) float64 { return r.Stats.WirelengthM })
	row("buffers k", func(r *fold3d.ChipResult) float64 { return float64(r.Stats.NumBuffers) / 1e3 })
	row("total power W", func(r *fold3d.ChipResult) float64 { return r.Power.TotalMW / 1e3 })
	row("cell power W", func(r *fold3d.ChipResult) float64 { return r.Power.CellMW / 1e3 })
	row("net power W", func(r *fold3d.ChipResult) float64 { return r.Power.NetMW / 1e3 })
	row("leakage W", func(r *fold3d.ChipResult) float64 { return r.Power.LeakageMW / 1e3 })
	row("HVT %", func(r *fold3d.ChipResult) float64 {
		return 100 * float64(r.Stats.NumHVT) / float64(r.Stats.NumCells)
	})
	fmt.Println("\npaper Table 5: 3D w/o fold -13.7% power, 3D w/ fold -20.3%; HVT 87.8/90.0/94.0%")
}
