// Bonding styles (the paper's §5 / Figures 6-7): fold the L2 tag block with
// increasing numbers of die-crossing connections, implementing each partition
// under face-to-back bonding (TSVs, which consume silicon and avoid macros)
// and face-to-face bonding (F2F vias, which float above the top metal). F2F
// wins everywhere, and wins most when the partition needs many 3D
// connections.
//
//	go run ./examples/bondingstyle
package main

import (
	"fmt"
	"log"

	"fold3d/pkg/fold3d"
)

func main() {
	design, err := fold3d.Generate(fold3d.Options{Only: []string{"L2T0"}})
	if err != nil {
		log.Fatal(err)
	}
	l2t := design.Blocks["L2T0"]

	// 2D reference for normalization (the paper plots power normalized to
	// the 2D design).
	fl2d := fold3d.NewFlow(design, fold3d.FlowConfig{})
	flat := l2t.Clone()
	r2d, err := fl2d.ImplementBlock(flat, 0.63)
	if err != nil {
		log.Fatal(err)
	}
	base := r2d.Power.TotalMW
	fmt.Printf("2D L2T power: %.1f mW (normalization base)\n\n", base)
	fmt.Println("partition  #vias   F2B power(norm)   F2F power(norm)")

	for i, target := range []int{0, 40, 70, 110, 160} {
		var norm [2]float64
		var vias int
		for j, bond := range []fold3d.Bonding{fold3d.F2B, fold3d.F2F} {
			cfg := fold3d.DefaultFlowConfig()
			cfg.Bond = bond
			fl := fold3d.NewFlow(design, cfg)
			b := l2t.Clone()
			opts := fold3d.FoldOptions{Mode: fold3d.FoldMinCut, Seed: 23, InflateCutTo: target}
			r, _, err := fl.FoldAndImplement(b, opts, 0.63)
			if err != nil {
				log.Fatal(err)
			}
			norm[j] = r.Power.TotalMW / base
			if v := b.NumTSV + b.NumF2F; v > vias {
				vias = v
			}
		}
		marker := ""
		if norm[1] < norm[0] {
			marker = "   <- F2F wins"
		}
		fmt.Printf("   #%d      %4d      %6.3f            %6.3f%s\n",
			i+1, vias, norm[0], norm[1], marker)
	}
	fmt.Println("\npaper: F2F wins in every partition; the densest gains -16.2% over F2B")
}
