// Fleet client: drive a fold3dd daemon through the typed Go client —
// submit a batch, follow its multiplexed event stream (with automatic
// resume across dropped connections), and wait for the per-job results.
// The example embeds the daemon's serving surface in-process (behind
// httptest so it runs standalone); point the client at any fold3dd URL
// instead — single node or fleet, the API is identical, a fleet just
// forwards each job to its consistent-hash owner.
//
//	go run ./examples/fleetclient
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"fold3d/pkg/fold3d"
)

func main() {
	ctx := context.Background()

	// Embed the serving surface: the same manager + handler fold3dd wires
	// up. Against a deployed daemon, skip this and NewClient its URL.
	mgr := fold3d.NewJobManager(fold3d.JobManagerOptions{Workers: 1, QueueDepth: 16})
	srv := httptest.NewServer(fold3d.NewJobHandler(mgr))
	defer srv.Close()
	defer func() { _ = mgr.Close(context.Background()) }()

	client := fold3d.NewClient(srv.URL)

	// One atomic batch: the same experiment at three seeds. All-or-nothing
	// admission — the queue either takes every member or none.
	batch, err := client.SubmitBatch(ctx, []fold3d.JobRequest{
		{Experiments: []string{"table4"}},
		{Experiments: []string{"table4"}, Seed: 7},
		{Experiments: []string{"table4"}, Seed: 11},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch %s admitted with %d jobs\n", batch.ID, len(batch.Jobs))

	// Follow the multiplexed stream: every member's events, tagged with the
	// job ID, under one dense batch-wide sequence. The client reconnects
	// with ?from= on dropped connections, so each event arrives exactly
	// once even across a daemon restart.
	transitions := 0
	err = client.StreamBatchEvents(ctx, batch.ID, 0, func(ev fold3d.BatchEvent) error {
		if ev.Event.State != "" {
			transitions++
			fmt.Printf("  [%s] seq %d: %s\n", ev.Job, ev.Seq, ev.Event.State)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream done: %d lifecycle transitions\n", transitions)

	// Final snapshots: Wait returns once a job is terminal (here it already
	// is — the stream only ends when the batch does).
	for _, member := range batch.Jobs {
		info, err := client.Wait(ctx, member.ID)
		if err != nil {
			log.Fatal(err)
		}
		if info.State != fold3d.JobDone {
			log.Fatalf("job %s ended %s: %s", info.ID, info.State, info.Error)
		}
		fmt.Printf("job %s seed %d -> fingerprint %s\n",
			info.ID, info.Request.Seed, info.Result.Fingerprint[:12])
	}

	// Error mapping: validation failures cross the HTTP boundary as typed
	// sentinels plus a machine-readable envelope.
	_, err = client.Submit(ctx, fold3d.JobRequest{Experiments: []string{"ghost"}})
	var apiErr *fold3d.APIError
	if errors.Is(err, fold3d.ErrBadRequest) && errors.As(err, &apiErr) {
		fmt.Printf("rejected as expected: code=%s status=%d\n", apiErr.Code, apiErr.Status)
	} else {
		log.Fatalf("unexpected error for unknown experiment: %v", err)
	}
}
