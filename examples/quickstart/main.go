// Quickstart: generate one block of the synthetic OpenSPARC T2, implement it
// in 2D, fold it across two dies, and compare the implementations — the
// smallest end-to-end tour of the fold3d API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fold3d/pkg/fold3d"
)

func main() {
	// Generate just the L2 tag block at the default 1:1000 scale.
	design, err := fold3d.Generate(fold3d.Options{Only: []string{"L2T0"}})
	if err != nil {
		log.Fatal(err)
	}
	block := design.Blocks["L2T0"]
	fmt.Printf("generated %s: %d cells, %d macros, %d nets\n",
		block.Name, len(block.Cells), len(block.Macros), len(block.Nets))

	// Implement it flat (2D) through the full flow: placement, CTS,
	// repeater insertion, sizing, extraction, STA and power analysis.
	fl := fold3d.NewFlow(design, fold3d.FlowConfig{})
	flat := block.Clone()
	r2d, err := fl.ImplementBlock(flat, 0.63)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2D:  footprint %6.0f um2, %5.0f um wire, %3d buffers, %s\n",
		r2d.Stats.Footprint, r2d.Stats.Wirelength, r2d.Stats.NumBuffers, r2d.Power)

	// Fold it across two dies (min-cut partition) and implement again with
	// face-to-back bonding (TSVs).
	folded := block.Clone()
	r3d, fold, err := fl.FoldAndImplement(folded, fold3d.FoldOptions{Mode: fold3d.FoldMinCut, Seed: 3}, 0.63)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3D:  footprint %6.0f um2, %5.0f um wire, %3d buffers, %s\n",
		r3d.Stats.Footprint, r3d.Stats.Wirelength, r3d.Stats.NumBuffers, r3d.Power)
	fmt.Printf("fold cut %d nets -> %d TSVs; power %+.1f%% vs 2D\n",
		fold.CutNets, folded.NumTSV,
		100*(r3d.Power.TotalMW/r2d.Power.TotalMW-1))
}
