// CCX folding (the paper's §4.3 / Figure 2): the cache crossbar splits
// naturally into its processor-to-cache (PCX) and cache-to-processor (CPX)
// halves, which share nothing but clock and a few test signals — so folding
// it across two dies needs only a handful of TSVs and removes the
// fragmentation that the 2D floorplan forces on it. This example reproduces
// the natural fold and the TSV-count sweep showing how TSV area overhead
// erodes the benefit.
//
//	go run ./examples/ccxfold
package main

import (
	"fmt"
	"log"

	"fold3d/pkg/fold3d"
)

func main() {
	design, err := fold3d.Generate(fold3d.Options{Only: []string{"CCX"}})
	if err != nil {
		log.Fatal(err)
	}
	ccx := design.Blocks["CCX"]
	fl := fold3d.NewFlow(design, fold3d.FlowConfig{})

	// 2D baseline.
	flat := ccx.Clone()
	r2d, err := fl.ImplementBlock(flat, 3.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2D CCX: %6.0f um2, %6.0f um wire, power %7.1f mW\n",
		r2d.Stats.Footprint, r2d.Stats.Wirelength, r2d.Power.TotalMW)

	// Natural fold: PCX on the bottom die, CPX on top.
	natural := fold3d.FoldOptions{
		Mode:     fold3d.FoldNatural,
		GroupDie: map[string]int{"pcx": 0, "cpx": 1},
		Seed:     11,
	}
	fold := ccx.Clone()
	r3d, fr, err := fl.FoldAndImplement(fold, natural, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3D CCX (natural, %d TSVs): %6.0f um2 (%+.1f%%), wire %+.1f%%, power %+.1f%%\n",
		fold.NumTSV, r3d.Stats.Footprint,
		100*(r3d.Stats.Footprint/r2d.Stats.Footprint-1),
		100*(r3d.Stats.Wirelength/r2d.Stats.Wirelength-1),
		100*(r3d.Power.TotalMW/r2d.Power.TotalMW-1))
	_ = fr
	fmt.Println("paper: -54.6% footprint, -28.8% wire, -32.8% power at 4 TSVs")

	// Force partitions with more 3D connections: TSV pads eat silicon and
	// the benefit shrinks (paper: down to -23.4% at 6,393 TSVs).
	fmt.Println("\nTSV-count sweep:")
	for _, target := range []int{15, 30, 60, 100} {
		opts := natural
		opts.InflateCutTo = target
		b := ccx.Clone()
		r, _, err := fl.FoldAndImplement(b, opts, 1.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d TSVs: footprint %6.0f um2, power %+.1f%% vs 2D\n",
			b.NumTSV, r.Stats.Footprint,
			100*(r.Power.TotalMW/r2d.Power.TotalMW-1))
	}
}
